"""Whole-suite integration: every one of the 40 tasks, end to end.

For each task: the gold program must evaluate, emit an Excel formula,
paraphrase into English, survive the canonical round trip, and — the
headline integration property — at least one generated description of the
task must translate to the gold program within the top 3 candidates.
"""

from __future__ import annotations

import pytest

from repro.dataset import all_tasks, build_sheet, generate_descriptions
from repro.dsl import Evaluator, ExcelEmitter, ast, paraphrase
from repro.dsl.parser import DslParseError, parse_expr, print_expr
from repro.evalkit import TaskOracle, canonicalize, evaluate_description
from repro.translate import Translator

_TASKS = list(all_tasks())


@pytest.fixture(scope="module")
def oracle():
    return TaskOracle()


@pytest.fixture(scope="module")
def translators(oracle):
    return {s: Translator(oracle.workbook(s)) for s in oracle.workbooks}


@pytest.mark.parametrize("task", _TASKS, ids=lambda t: t.task_id)
class TestEveryTask:
    def test_gold_evaluates(self, task):
        workbook = build_sheet(task.sheet_id)
        result = Evaluator(workbook).run(task.gold(workbook), place=False)
        assert result.kind in ("scalar", "vector", "selection", "format")

    def test_gold_emits_excel(self, task):
        workbook = build_sheet(task.sheet_id)
        rendered = ExcelEmitter(workbook).emit(task.gold(workbook))
        assert rendered.startswith(("=", "["))

    def test_gold_paraphrases(self, task):
        workbook = build_sheet(task.sheet_id)
        english = paraphrase(task.gold(workbook))
        assert english and "Error" not in english

    def test_gold_canonicalization_stable(self, task):
        workbook = build_sheet(task.sheet_id)
        gold = task.gold(workbook)
        once = canonicalize(gold, workbook)
        assert canonicalize(once, workbook) == once

    def test_gold_round_trips_through_parser(self, task):
        workbook = build_sheet(task.sheet_id)
        gold = task.gold(workbook)
        assert parse_expr(print_expr(gold)) == gold

    def test_some_description_translates_to_gold(
        self, task, oracle, translators
    ):
        descriptions = generate_descriptions(task, 6)
        translator = translators[task.sheet_id]
        best = None
        for description in descriptions:
            outcome = evaluate_description(translator, oracle, description)
            if outcome.rank is not None:
                best = outcome.rank if best is None else min(best, outcome.rank)
                if best == 0:
                    break
        assert best is not None and best < 3, (
            f"no description of {task.task_id} reached the top 3"
        )
