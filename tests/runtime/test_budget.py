"""Budget semantics: probes, latching, and the anytime translation path."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, TranslationError
from repro.runtime import Budget
from repro.translate import Translator

from ..conftest import make_payroll

RUNNING_EXAMPLE = "sum the totalpay for the capitol hill baristas"
RUNNING_ANSWER = '=SUMIFS(H2:H7, B2:B7, "capitol hill", C2:C7, "barista")'


class FakeClock:
    """Deterministic clock: advances a fixed amount per reading."""

    def __init__(self, step: float = 0.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestBudget:
    def test_unlimited_never_trips(self):
        budget = Budget()
        assert budget.unlimited
        for _ in range(10_000):
            budget.checkpoint("loop")
        budget.charge(10**9)
        assert not budget.exceeded()

    def test_derivation_cap_trips_and_latches(self):
        budget = Budget(max_derivations=10)
        budget.charge(10)
        assert not budget.exceeded("a")
        budget.charge(1)
        assert budget.exceeded("b")
        assert budget.exhausted
        assert budget.exhausted_stage == "b"
        assert budget.exhausted_reason == "derivations"
        # latched: stays exhausted even though nothing else changed
        assert budget.exceeded("c")
        assert budget.exhausted_stage == "b"

    def test_deadline_trips_with_fake_clock(self):
        clock = FakeClock(step=0.01)
        budget = Budget(deadline=0.05, clock=clock)
        with pytest.raises(BudgetExceededError) as err:
            for _ in range(100):
                budget.checkpoint("span")
        assert err.value.code == "budget_exceeded"
        assert err.value.stage == "span"
        assert budget.exhausted_reason == "deadline"

    def test_remaining_time(self):
        clock = FakeClock(step=0.0)
        budget = Budget(deadline=1.0, clock=clock)
        assert budget.remaining_time() == pytest.approx(1.0)
        clock.step = 0.4
        assert budget.remaining_time() == pytest.approx(0.6)
        assert Budget().remaining_time() is None

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline=-1)
        with pytest.raises(ValueError):
            Budget(max_derivations=-1)


class TestAnytimeTranslation:
    """Budget-bounded translate never raises and ranks what exists."""

    def test_unbounded_budget_is_behaviour_preserving(self):
        translator = Translator(make_payroll())
        plain = translator.translate(RUNNING_EXAMPLE)
        budgeted = translator.translate(RUNNING_EXAMPLE, budget=Budget())
        assert [(str(c.program), c.score) for c in plain] == [
            (str(c.program), c.score) for c in budgeted
        ]

    def test_mid_dp_deadline_still_ranks_running_example_top1(self):
        """The acceptance scenario: a budget tripping inside the final
        span's synthesis closure (after the conditional-sum rule already
        fired) must still surface the correct program via anytime
        ranking."""
        workbook = make_payroll()
        translator = Translator(workbook)
        probe = Budget()
        full = translator.translate(RUNNING_EXAMPLE, budget=probe)
        assert full[0].excel(workbook) == RUNNING_ANSWER
        total = probe.spent_derivations

        tight = Budget(max_derivations=total - 5)
        anytime = translator.translate(RUNNING_EXAMPLE, budget=tight)
        assert tight.exhausted, "budget was meant to trip mid-DP"
        assert anytime, "anytime path must still produce candidates"
        assert anytime[0].excel(workbook) == RUNNING_ANSWER

    def test_anytime_never_raises_at_any_budget(self):
        """Sweep the whole budget range: translate must return a (possibly
        empty) list at every derivation cap, never raise."""
        workbook = make_payroll()
        translator = Translator(workbook)
        probe = Budget()
        translator.translate(RUNNING_EXAMPLE, budget=probe)
        total = probe.spent_derivations
        caps = sorted({0, 1, 2, 5, total // 4, total // 2, total - 1})
        produced_any = False
        for cap in caps:
            budget = Budget(max_derivations=cap)
            candidates = translator.translate(RUNNING_EXAMPLE, budget=budget)
            assert isinstance(candidates, list)
            produced_any = produced_any or bool(candidates)
        assert produced_any

    def test_zero_deadline_returns_immediately_and_empty_or_ranked(self):
        translator = Translator(make_payroll())
        budget = Budget(deadline=0.0)
        candidates = translator.translate(RUNNING_EXAMPLE, budget=budget)
        assert budget.exhausted
        assert isinstance(candidates, list)

    def test_budget_does_not_mask_input_errors(self):
        translator = Translator(make_payroll())
        with pytest.raises(TranslationError):
            translator.translate("   ", budget=Budget(deadline=10.0))
