"""Fault-injection facility: spec parsing, arming, and firing rules."""

from __future__ import annotations

import time

import pytest

from repro.errors import InjectedFaultError, ReproError
from repro.runtime import FaultPlan, FaultSpec, parse_plan
from repro.runtime.faults import clear, fault_point, inject, install


@pytest.fixture(autouse=True)
def disarm():
    yield
    clear()


class TestFaultSpec:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ReproError) as err:
            FaultSpec("parser")
        assert err.value.code == "bad_fault_spec"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("seeds", "explode")

    def test_raise_fires_repro_error(self):
        spec = FaultSpec("seeds", "raise")
        with pytest.raises(InjectedFaultError) as err:
            spec.trigger()
        assert err.value.code == "fault_injected"
        assert err.value.stage == "seeds"

    def test_raise_runtime_error_kind(self):
        spec = FaultSpec("rules", "raise", error="runtime")
        with pytest.raises(RuntimeError):
            spec.trigger()

    def test_after_skips_initial_hits(self):
        spec = FaultSpec("seeds", "raise", after=2)
        spec.trigger()
        spec.trigger()
        with pytest.raises(InjectedFaultError):
            spec.trigger()

    def test_times_limits_firings(self):
        spec = FaultSpec("seeds", "raise", times=1)
        with pytest.raises(InjectedFaultError):
            spec.trigger()
        spec.trigger()  # second hit: exhausted, no fire
        assert spec.fired == 1

    def test_delay_sleeps(self):
        spec = FaultSpec("synthesis", "delay", delay=0.02)
        start = time.perf_counter()
        spec.trigger()
        assert time.perf_counter() - start >= 0.015


class TestArming:
    def test_fault_point_is_noop_when_disarmed(self):
        clear()
        fault_point("seeds")  # must not raise

    def test_install_and_clear(self):
        install(FaultPlan([FaultSpec("seeds", "raise")]))
        with pytest.raises(InjectedFaultError):
            fault_point("seeds")
        fault_point("rules")  # other stages unaffected
        clear()
        fault_point("seeds")

    def test_inject_context_manager_restores(self):
        with inject(FaultSpec("ranking", "raise")):
            with pytest.raises(InjectedFaultError):
                fault_point("ranking")
        fault_point("ranking")  # disarmed again


class TestParsePlan:
    def test_raise_spec(self):
        plan = parse_plan("synthesis:raise")
        assert len(plan.specs) == 1
        assert plan.specs[0].stage == "synthesis"
        assert plan.specs[0].mode == "raise"

    def test_delay_with_seconds_and_multiple(self):
        plan = parse_plan("seeds:delay:0.05; rules:raise:runtime")
        assert plan.specs[0].delay == pytest.approx(0.05)
        assert plan.specs[1].error == "runtime"

    def test_bad_syntax_rejected(self):
        with pytest.raises(ReproError) as err:
            parse_plan("synthesis")
        assert err.value.code == "bad_fault_spec"

    def test_env_var_arms_process(self, monkeypatch):
        from repro.runtime import faults

        monkeypatch.setenv(faults.ENV_VAR, "tokenize:raise")
        plan = faults.install_from_env()
        assert plan is not None
        with pytest.raises(InjectedFaultError):
            fault_point("tokenize")


class TestBadDelaySpecs:
    def test_malformed_delay_is_structured(self):
        with pytest.raises(ReproError) as err:
            parse_plan("seeds:delay:abc")
        assert err.value.code == "bad_fault_spec"
        assert "abc" in str(err.value)

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError) as err:
            parse_plan("seeds:delay:-0.5")
        assert err.value.code == "bad_fault_spec"

    def test_good_items_before_the_bad_one_do_not_arm(self):
        with pytest.raises(ReproError):
            parse_plan("rules:raise; seeds:delay:soon")

    def test_env_var_with_malformed_delay_is_ignored(self, monkeypatch, caplog):
        import logging

        from repro.runtime import faults

        monkeypatch.setenv(faults.ENV_VAR, "seeds:delay:abc")
        # The complaint is a structured WARNING on repro.runtime.faults;
        # unconfigured processes still see it via logging.lastResort.
        with caplog.at_level(logging.WARNING, logger="repro.runtime.faults"):
            assert faults.install_from_env() is None
        assert "ignoring" in caplog.text
        fault_point("seeds")  # nothing armed


class TestWorkerCrashStage:
    def test_worker_crash_is_a_known_stage(self):
        from repro.runtime.faults import STAGES

        assert "worker_crash" in STAGES
        spec = FaultSpec("worker_crash", "raise")
        assert spec.stage == "worker_crash"

    def test_parse_plan_accepts_worker_crash(self):
        plan = parse_plan("worker_crash:raise")
        assert plan.specs[0].stage == "worker_crash"

    def test_worker_crash_point_raises_when_armed(self):
        install(parse_plan("worker_crash:raise"))
        try:
            with pytest.raises(InjectedFaultError):
                fault_point("worker_crash")
        finally:
            clear()
