"""TranslationService: degradation ladder, never-crash contract,
structured diagnostics."""

from __future__ import annotations

import pytest

from repro.runtime import (
    Budget,
    FaultPlan,
    FaultSpec,
    TranslationService,
    degradation_ladder,
)
from repro.runtime.faults import clear
from repro.translate import Translator, TranslatorConfig

from ..conftest import make_payroll

RUNNING_EXAMPLE = "sum the totalpay for the capitol hill baristas"
RUNNING_ANSWER = '=SUMIFS(H2:H7, B2:B7, "capitol hill", C2:C7, "barista")'


@pytest.fixture(autouse=True)
def disarm():
    yield
    clear()


class TestLadder:
    def test_three_tiers_cheapening(self):
        tiers = degradation_ladder()
        assert [t.name for t in tiers] == ["full", "reduced", "rules_only"]
        full, reduced, rules_only = (t.config for t in tiers)
        assert reduced.beam_size < full.beam_size
        assert reduced.synth_max_new < full.synth_max_new
        assert rules_only.use_synthesis is False
        assert rules_only.use_rules is True

    def test_ladder_respects_caller_config(self):
        config = TranslatorConfig(beam_size=300, fuzzy_columns=True)
        tiers = degradation_ladder(config)
        assert tiers[0].config.beam_size == 300
        assert all(t.config.fuzzy_columns for t in tiers)


class TestDefaultPath:
    def test_no_deadline_matches_bare_translator_exactly(self):
        workbook = make_payroll()
        service = TranslationService(workbook)
        translator = Translator(workbook)
        result = service.translate(RUNNING_EXAMPLE)
        plain = translator.translate(RUNNING_EXAMPLE)
        assert result.ok and not result.degraded and not result.anytime
        assert result.tier == "full"
        assert [(str(c.program), c.score) for c in result.candidates] == [
            (str(c.program), c.score) for c in plain
        ]

    def test_diagnostics_populated(self):
        service = TranslationService(make_payroll())
        result = service.translate(RUNNING_EXAMPLE)
        assert result.elapsed > 0
        assert result.budget_spent > 0
        assert len(result.attempts) == 1
        attempt = result.attempts[0]
        assert attempt.tier == "full"
        assert attempt.candidates == len(result.candidates)
        assert attempt.error_code is None

    def test_input_error_is_structured_not_raised(self):
        service = TranslationService(make_payroll())
        result = service.translate("   ")
        assert not result.ok
        assert result.error_code == "empty_description"
        assert result.candidates == []
        # deterministic input error: no pointless retries at cheaper tiers
        assert len(result.attempts) == 1


class TestDegradationLadder:
    def test_synthesis_fault_falls_back_to_rules_only(self):
        service = TranslationService(
            make_payroll(),
            faults=FaultPlan([FaultSpec("synthesis", "raise")]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok
        assert result.degraded
        assert result.tier == "rules_only"
        assert [a.tier for a in result.attempts] == [
            "full", "reduced", "rules_only"
        ]
        assert [a.error_code for a in result.attempts] == [
            "fault_injected", "fault_injected", None
        ]
        assert result.candidates

    def test_transient_fault_recovers_at_second_tier(self):
        service = TranslationService(
            make_payroll(),
            faults=FaultPlan([FaultSpec("rules", "raise", times=1)]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok and result.degraded
        assert result.tier == "reduced"
        assert [a.tier for a in result.attempts] == ["full", "reduced"]

    @pytest.mark.parametrize(
        "stage", ["tokenize", "seeds", "rules", "synthesis", "ranking"]
    )
    def test_any_single_stage_fault_never_raises(self, stage):
        """The acceptance contract: a persistent fault in any one pipeline
        stage yields candidates or a structured error — never an
        exception."""
        service = TranslationService(
            make_payroll(), faults=FaultPlan([FaultSpec(stage, "raise")])
        )
        result = service.translate(RUNNING_EXAMPLE)
        if result.ok:
            assert result.candidates and result.degraded
        else:
            assert result.error_code == "fault_injected"
            assert result.candidates == []

    @pytest.mark.parametrize(
        "stage", ["tokenize", "seeds", "rules", "synthesis", "ranking"]
    )
    def test_runtime_bug_in_any_stage_becomes_internal_error(self, stage):
        service = TranslationService(
            make_payroll(),
            faults=FaultPlan([FaultSpec(stage, "raise", error="runtime")]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        if not result.ok:
            assert result.error_code == "internal_error"

    def test_all_tiers_fault_gives_structured_error(self):
        service = TranslationService(
            make_payroll(), faults=FaultPlan([FaultSpec("seeds", "raise")])
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert not result.ok
        assert result.error_code == "fault_injected"
        assert result.tier is None
        assert len(result.attempts) == 3


class TestDeadlines:
    def test_generous_deadline_not_degraded(self):
        service = TranslationService(make_payroll(), deadline=30.0)
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok and not result.degraded
        assert result.top.excel(service.workbook) == RUNNING_ANSWER

    def test_slow_stage_degrades_but_answers(self):
        """A 20 ms injected delay per synthesis call blows a 100 ms
        deadline at the full tier; the service must still answer (anytime
        candidates or a cheaper tier), never raise."""
        service = TranslationService(
            make_payroll(),
            deadline=0.1,
            faults=FaultPlan([FaultSpec("synthesis", "delay", delay=0.02)]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok
        assert result.degraded
        assert result.candidates

    def test_impossible_deadline_structured_error_or_candidates(self):
        service = TranslationService(make_payroll(), deadline=0.0)
        result = service.translate(RUNNING_EXAMPLE)
        assert isinstance(result.elapsed, float)
        if not result.ok:
            assert result.error_code == "deadline_exhausted"
        assert len(result.attempts) == 3

    def test_derivation_cap_triggers_anytime(self):
        workbook = make_payroll()
        probe = Budget()
        Translator(workbook).translate(RUNNING_EXAMPLE, budget=probe)
        service = TranslationService(
            workbook, max_derivations=probe.spent_derivations - 5
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok
        assert result.degraded and result.anytime
        assert result.tier == "full"
        assert result.top.excel(workbook) == RUNNING_ANSWER
        assert result.attempts[0].exhausted


class TestSessionAndEvalkitWiring:
    def test_session_reports_diagnostics(self):
        from repro.session import NLyzeSession

        session = NLyzeSession(make_payroll())
        step = session.ask(RUNNING_EXAMPLE)
        assert step.diagnostics is not None
        assert step.diagnostics.ok and not step.diagnostics.degraded
        assert step.views[0].excel == RUNNING_ANSWER

    def test_session_survives_faulty_synthesis(self):
        from repro.session import NLyzeSession

        session = NLyzeSession(make_payroll())
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                session, "_refresh_translator", lambda: None
            )  # keep the armed service
            session._service.faults = FaultPlan(
                [FaultSpec("synthesis", "raise")]
            )
            step = session.ask(RUNNING_EXAMPLE)
        assert step.diagnostics.degraded
        assert step.diagnostics.tier == "rules_only"

    def test_evaluate_batch_under_deadline_records_degradation(self):
        from repro.dataset import Corpus
        from repro.evalkit import TaskOracle, evaluate_batch

        corpus = Corpus.default()
        oracle = TaskOracle()
        board = evaluate_batch(
            corpus.test[:6], oracle=oracle, deadline=30.0
        )
        assert board.n == 6
        assert board.error_rate == 0.0
        assert 0.0 <= board.degraded_rate <= 1.0
        assert board.percentile_seconds(0.5) <= board.percentile_seconds(0.95)


class ManualClock:
    """A clock advanced explicitly by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TickingClock:
    """A clock where *every* read costs ``step`` seconds — any deadline
    is blown before real work happens, deterministically."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestLadderDedupe:
    def test_synthesis_free_base_drops_redundant_rules_only(self):
        # reduced already equals rules_only when synthesis is off at the
        # base: re-running the identical config would only burn deadline
        tiers = degradation_ladder(TranslatorConfig(use_synthesis=False))
        assert [t.name for t in tiers] == ["full", "reduced"]

    def test_no_rules_means_no_rules_only_rung(self):
        tiers = degradation_ladder(TranslatorConfig(use_rules=False))
        assert [t.name for t in tiers] == ["full", "reduced"]
        assert all(t.config.use_rules is False for t in tiers)

    def test_floor_knobs_collapse_reduced_into_full(self):
        config = TranslatorConfig(
            beam_size=24, synth_max_new=16, max_alignments=4
        )
        tiers = degradation_ladder(config)
        assert [t.name for t in tiers] == ["full", "rules_only"]

    def test_floor_knobs_without_synthesis_collapse_to_one_tier(self):
        config = TranslatorConfig(
            beam_size=24, synth_max_new=16, max_alignments=4,
            use_synthesis=False,
        )
        tiers = degradation_ladder(config)
        assert [t.name for t in tiers] == ["full"]

    def test_deduped_ladder_still_translates(self):
        service = TranslationService(
            make_payroll(), config=TranslatorConfig(use_synthesis=False)
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok and not result.degraded
        assert result.tier == "full"
        # rules alone cannot stack both conditions, but still answer
        assert result.top.excel(service.workbook).startswith("=SUM")


class TestThreadSafety:
    def test_translator_for_builds_one_instance_under_contention(self):
        import threading

        service = TranslationService(make_payroll())
        tier = service.tiers[0]
        n = 8
        barrier = threading.Barrier(n)
        seen: list[object] = []

        def hit():
            barrier.wait()
            seen.append(service.translator_for(tier))

        threads = [threading.Thread(target=hit) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(seen) == n
        assert all(translator is seen[0] for translator in seen)
        assert len(service._translators) == 1

    def test_concurrent_translate_is_consistent(self):
        import threading

        service = TranslationService(make_payroll())
        errors: list[BaseException] = []
        answers: list[str] = []
        lock = threading.Lock()

        def work():
            try:
                for _ in range(3):
                    result = service.translate(RUNNING_EXAMPLE)
                    assert result.ok
                    formula = result.top.excel(service.workbook)
                    with lock:
                        answers.append(formula)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert errors == []
        assert len(answers) == 18
        assert set(answers) == {RUNNING_ANSWER}


class TestDeadlineExhaustedDeterministic:
    def test_ticking_clock_exhausts_every_tier(self):
        service = TranslationService(
            make_payroll(), deadline=0.5, clock=TickingClock(step=1.0)
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert not result.ok
        assert result.error_code == "deadline_exhausted"
        assert result.tier is None
        assert result.degraded and not result.anytime
        assert result.candidates == []
        assert len(result.attempts) == len(service.tiers)
        assert all(a.exhausted for a in result.attempts)
        assert all(a.candidates == 0 for a in result.attempts)
        assert "500 ms" in result.error


class TestBudgetSlicing:
    def test_even_split_and_last_tier_inherits_remainder(self):
        clock = ManualClock()
        service = TranslationService(make_payroll(), deadline=3.0, clock=clock)
        assert len(service.tiers) == 3

        first = service._budget_for(0, start=0.0)
        assert first.deadline == pytest.approx(1.0)  # 3.0 remaining / 3 tiers

        clock.advance(1.0)
        second = service._budget_for(1, start=0.0)
        assert second.deadline == pytest.approx(1.0)  # 2.0 remaining / 2 tiers

        clock.advance(1.5)  # second tier overran its slice
        last = service._budget_for(2, start=0.0)
        assert last.deadline == pytest.approx(0.5)  # full remainder, no split

    def test_zero_remaining_is_exhausted_not_negative(self):
        clock = ManualClock()
        service = TranslationService(make_payroll(), deadline=1.0, clock=clock)
        clock.advance(5.0)  # way past the deadline before the last tier
        budget = service._budget_for(len(service.tiers) - 1, start=0.0)
        assert budget.deadline == 0.0  # clamped, never negative
        clock.advance(0.001)
        assert budget.exceeded("test")
        assert budget.exhausted

    def test_no_deadline_gives_unlimited_budget(self):
        service = TranslationService(make_payroll())
        assert service._budget_for(0, start=0.0).unlimited
