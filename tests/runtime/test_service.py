"""TranslationService: degradation ladder, never-crash contract,
structured diagnostics."""

from __future__ import annotations

import pytest

from repro.runtime import (
    Budget,
    FaultPlan,
    FaultSpec,
    TranslationService,
    degradation_ladder,
)
from repro.runtime.faults import clear
from repro.translate import Translator, TranslatorConfig

from ..conftest import make_payroll

RUNNING_EXAMPLE = "sum the totalpay for the capitol hill baristas"
RUNNING_ANSWER = '=SUMIFS(H2:H7, B2:B7, "capitol hill", C2:C7, "barista")'


@pytest.fixture(autouse=True)
def disarm():
    yield
    clear()


class TestLadder:
    def test_three_tiers_cheapening(self):
        tiers = degradation_ladder()
        assert [t.name for t in tiers] == ["full", "reduced", "rules_only"]
        full, reduced, rules_only = (t.config for t in tiers)
        assert reduced.beam_size < full.beam_size
        assert reduced.synth_max_new < full.synth_max_new
        assert rules_only.use_synthesis is False
        assert rules_only.use_rules is True

    def test_ladder_respects_caller_config(self):
        config = TranslatorConfig(beam_size=300, fuzzy_columns=True)
        tiers = degradation_ladder(config)
        assert tiers[0].config.beam_size == 300
        assert all(t.config.fuzzy_columns for t in tiers)


class TestDefaultPath:
    def test_no_deadline_matches_bare_translator_exactly(self):
        workbook = make_payroll()
        service = TranslationService(workbook)
        translator = Translator(workbook)
        result = service.translate(RUNNING_EXAMPLE)
        plain = translator.translate(RUNNING_EXAMPLE)
        assert result.ok and not result.degraded and not result.anytime
        assert result.tier == "full"
        assert [(str(c.program), c.score) for c in result.candidates] == [
            (str(c.program), c.score) for c in plain
        ]

    def test_diagnostics_populated(self):
        service = TranslationService(make_payroll())
        result = service.translate(RUNNING_EXAMPLE)
        assert result.elapsed > 0
        assert result.budget_spent > 0
        assert len(result.attempts) == 1
        attempt = result.attempts[0]
        assert attempt.tier == "full"
        assert attempt.candidates == len(result.candidates)
        assert attempt.error_code is None

    def test_input_error_is_structured_not_raised(self):
        service = TranslationService(make_payroll())
        result = service.translate("   ")
        assert not result.ok
        assert result.error_code == "empty_description"
        assert result.candidates == []
        # deterministic input error: no pointless retries at cheaper tiers
        assert len(result.attempts) == 1


class TestDegradationLadder:
    def test_synthesis_fault_falls_back_to_rules_only(self):
        service = TranslationService(
            make_payroll(),
            faults=FaultPlan([FaultSpec("synthesis", "raise")]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok
        assert result.degraded
        assert result.tier == "rules_only"
        assert [a.tier for a in result.attempts] == [
            "full", "reduced", "rules_only"
        ]
        assert [a.error_code for a in result.attempts] == [
            "fault_injected", "fault_injected", None
        ]
        assert result.candidates

    def test_transient_fault_recovers_at_second_tier(self):
        service = TranslationService(
            make_payroll(),
            faults=FaultPlan([FaultSpec("rules", "raise", times=1)]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok and result.degraded
        assert result.tier == "reduced"
        assert [a.tier for a in result.attempts] == ["full", "reduced"]

    @pytest.mark.parametrize(
        "stage", ["tokenize", "seeds", "rules", "synthesis", "ranking"]
    )
    def test_any_single_stage_fault_never_raises(self, stage):
        """The acceptance contract: a persistent fault in any one pipeline
        stage yields candidates or a structured error — never an
        exception."""
        service = TranslationService(
            make_payroll(), faults=FaultPlan([FaultSpec(stage, "raise")])
        )
        result = service.translate(RUNNING_EXAMPLE)
        if result.ok:
            assert result.candidates and result.degraded
        else:
            assert result.error_code == "fault_injected"
            assert result.candidates == []

    @pytest.mark.parametrize(
        "stage", ["tokenize", "seeds", "rules", "synthesis", "ranking"]
    )
    def test_runtime_bug_in_any_stage_becomes_internal_error(self, stage):
        service = TranslationService(
            make_payroll(),
            faults=FaultPlan([FaultSpec(stage, "raise", error="runtime")]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        if not result.ok:
            assert result.error_code == "internal_error"

    def test_all_tiers_fault_gives_structured_error(self):
        service = TranslationService(
            make_payroll(), faults=FaultPlan([FaultSpec("seeds", "raise")])
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert not result.ok
        assert result.error_code == "fault_injected"
        assert result.tier is None
        assert len(result.attempts) == 3


class TestDeadlines:
    def test_generous_deadline_not_degraded(self):
        service = TranslationService(make_payroll(), deadline=30.0)
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok and not result.degraded
        assert result.top.excel(service.workbook) == RUNNING_ANSWER

    def test_slow_stage_degrades_but_answers(self):
        """A 20 ms injected delay per synthesis call blows a 100 ms
        deadline at the full tier; the service must still answer (anytime
        candidates or a cheaper tier), never raise."""
        service = TranslationService(
            make_payroll(),
            deadline=0.1,
            faults=FaultPlan([FaultSpec("synthesis", "delay", delay=0.02)]),
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok
        assert result.degraded
        assert result.candidates

    def test_impossible_deadline_structured_error_or_candidates(self):
        service = TranslationService(make_payroll(), deadline=0.0)
        result = service.translate(RUNNING_EXAMPLE)
        assert isinstance(result.elapsed, float)
        if not result.ok:
            assert result.error_code == "deadline_exhausted"
        assert len(result.attempts) == 3

    def test_derivation_cap_triggers_anytime(self):
        workbook = make_payroll()
        probe = Budget()
        Translator(workbook).translate(RUNNING_EXAMPLE, budget=probe)
        service = TranslationService(
            workbook, max_derivations=probe.spent_derivations - 5
        )
        result = service.translate(RUNNING_EXAMPLE)
        assert result.ok
        assert result.degraded and result.anytime
        assert result.tier == "full"
        assert result.top.excel(workbook) == RUNNING_ANSWER
        assert result.attempts[0].exhausted


class TestSessionAndEvalkitWiring:
    def test_session_reports_diagnostics(self):
        from repro.session import NLyzeSession

        session = NLyzeSession(make_payroll())
        step = session.ask(RUNNING_EXAMPLE)
        assert step.diagnostics is not None
        assert step.diagnostics.ok and not step.diagnostics.degraded
        assert step.views[0].excel == RUNNING_ANSWER

    def test_session_survives_faulty_synthesis(self):
        from repro.session import NLyzeSession

        session = NLyzeSession(make_payroll())
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                session, "_refresh_translator", lambda: None
            )  # keep the armed service
            session._service.faults = FaultPlan(
                [FaultSpec("synthesis", "raise")]
            )
            step = session.ask(RUNNING_EXAMPLE)
        assert step.diagnostics.degraded
        assert step.diagnostics.tier == "rules_only"

    def test_evaluate_batch_under_deadline_records_degradation(self):
        from repro.dataset import Corpus
        from repro.evalkit import TaskOracle, evaluate_batch

        corpus = Corpus.default()
        oracle = TaskOracle()
        board = evaluate_batch(
            corpus.test[:6], oracle=oracle, deadline=30.0
        )
        assert board.n == 6
        assert board.error_rate == 0.0
        assert 0.0 <= board.degraded_rate <= 1.0
        assert board.percentile_seconds(0.5) <= board.percentile_seconds(0.95)
