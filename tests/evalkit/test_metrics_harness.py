"""Tests for the metrics, harness, and clustering experiment code."""

import pytest

from repro.dataset import Corpus, Description, all_tasks, build_sheet
from repro.evalkit import (
    Scoreboard,
    TaskOracle,
    cluster_descriptions,
    evaluate_batch,
    evaluate_description,
    format_table1,
    format_table2,
    format_table3,
    run_table1,
    run_table2,
    run_table3,
)
from repro.evalkit.metrics import EvalOutcome
from repro.translate import Translator


@pytest.fixture(scope="module")
def oracle():
    return TaskOracle()


@pytest.fixture(scope="module")
def small_corpus():
    return Corpus.default(total=200)


class TestScoreboard:
    def _outcome(self, rank, seconds=0.01):
        d = Description(text="x", task_id="payroll-01", sheet_id="payroll")
        return EvalOutcome(description=d, rank=rank, seconds=seconds)

    def test_rates(self):
        board = Scoreboard()
        for rank in (0, 0, 1, 2, 5, None):
            board.add(self._outcome(rank))
        assert board.top1_rate == pytest.approx(2 / 6)
        assert board.top3_rate == pytest.approx(4 / 6)
        assert board.recall == pytest.approx(5 / 6)

    def test_empty_board(self):
        board = Scoreboard()
        assert board.top1_rate == 0.0
        assert board.f1 == 0.0
        assert board.avg_seconds == 0.0

    def test_f1_harmonic_mean(self):
        board = Scoreboard()
        board.add(self._outcome(0))
        board.add(self._outcome(5))
        p, r = board.top1_rate, board.recall
        assert board.f1 == pytest.approx(2 * p * r / (p + r))

    def test_avg_seconds(self):
        board = Scoreboard()
        board.add(self._outcome(0, seconds=0.1))
        board.add(self._outcome(0, seconds=0.3))
        assert board.avg_seconds == pytest.approx(0.2)


class TestOracle:
    def test_oracle_has_gold_for_all_tasks(self, oracle):
        for task in all_tasks():
            assert oracle.gold(task.task_id) is not None

    def test_oracle_workbooks_per_sheet(self, oracle):
        assert oracle.workbook("payroll").default_table.name == "Employees"


class TestEvaluateDescription:
    def test_correct_translation_scores_rank_zero(self, oracle):
        translator = Translator(oracle.workbook("payroll"))
        d = Description(
            text="sum the totalpay for the capitol hill baristas",
            task_id="payroll-01", sheet_id="payroll",
        )
        outcome = evaluate_description(translator, oracle, d)
        assert outcome.rank == 0
        assert outcome.seconds > 0

    def test_nonsense_scores_none(self, oracle):
        translator = Translator(oracle.workbook("payroll"))
        d = Description(
            text="count the cashiers", task_id="payroll-01",
            sheet_id="payroll",
        )
        outcome = evaluate_description(translator, oracle, d)
        assert outcome.rank != 0

    def test_batch_reuses_translators(self, small_corpus, oracle):
        board = evaluate_batch(small_corpus.test[:10], oracle=oracle)
        assert board.n == 10


class TestHarness:
    def test_table2_small(self, small_corpus):
        result = run_table2(small_corpus, limit_per_sheet=4)
        assert set(result.per_sheet) == {
            "payroll", "inventory", "countries", "invoices"
        }
        assert result.overall.n == 16
        text = format_table2(result)
        assert "payroll" in text and "F1" in text

    def test_table3_small(self, small_corpus):
        result = run_table3(
            small_corpus, sample=8, modes=("rules_only", "complete")
        )
        assert set(result.per_mode) == {"rules_only", "complete"}
        text = format_table3(result)
        assert "Pattern Rule Only" in text

    def test_table1_shapes(self):
        data = run_table1(variants_per_task=5)
        assert len(data["variations"]) == 5
        assert len(data["tasks"]) >= 5
        assert "totalpay" in format_table1(data)


class TestClustering:
    def test_identical_descriptions_one_cluster(self):
        from repro.translate.context import SheetContext

        ctx = SheetContext(build_sheet("payroll"))
        d = Description(text="sum the hours", task_id="payroll-01",
                        sheet_id="payroll")
        assert cluster_descriptions([d, d, d], ctx) == 1

    def test_different_content_order_splits(self):
        from repro.translate.context import SheetContext

        ctx = SheetContext(build_sheet("payroll"))
        a = Description(text="sum hours for baristas",
                        task_id="t", sheet_id="payroll")
        b = Description(text="for baristas sum hours",
                        task_id="t", sheet_id="payroll")
        assert cluster_descriptions([a, b], ctx) == 2

    def test_dissimilar_wording_splits(self):
        from repro.translate.context import SheetContext

        ctx = SheetContext(build_sheet("payroll"))
        a = Description(text="sum the hours", task_id="t", sheet_id="payroll")
        b = Description(
            text="computer please calculate for me the total of all the hours",
            task_id="t", sheet_id="payroll",
        )
        assert cluster_descriptions([a, b], ctx) == 2
