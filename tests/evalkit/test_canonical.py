"""Unit tests for canonical program equivalence."""

import pytest

from repro.dataset import build_sheet
from repro.dsl import ast
from repro.evalkit import canonicalize, equivalent
from repro.sheet import CellValue, FormatFn


@pytest.fixture(scope="module")
def wb():
    return build_sheet("payroll")


def eq(column, value, table=None):
    return ast.Compare(
        ast.RelOp.EQ, ast.ColumnRef(column, table),
        ast.Lit(CellValue.text(value)),
    )


class TestColumns:
    def test_column_resolved_to_table(self, wb):
        canon = canonicalize(ast.ColumnRef("hours"), wb)
        assert canon.table == "employees"

    def test_explicit_default_table_equals_implicit(self, wb):
        a = ast.ColumnRef("hours")
        b = ast.ColumnRef("hours", "Employees")
        assert equivalent(a, b, wb)

    def test_lookup_scoped_column_qualification_irrelevant(self, wb):
        base = ast.Lookup(
            ast.Lit(CellValue.text("chef")), ast.GetTable("PayRates"),
            ast.ColumnRef("title"), ast.ColumnRef("payrate"),
        )
        qualified = ast.Lookup(
            ast.Lit(CellValue.text("chef")), ast.GetTable("PayRates"),
            ast.ColumnRef("title", "PayRates"),
            ast.ColumnRef("payrate", "PayRates"),
        )
        assert equivalent(base, qualified, wb)


class TestCommutativity:
    def test_and_commutes(self, wb):
        a = ast.And(eq("title", "chef"), eq("location", "downtown"))
        b = ast.And(eq("location", "downtown"), eq("title", "chef"))
        assert equivalent(a, b, wb)

    def test_or_commutes(self, wb):
        a = ast.Or(eq("title", "chef"), eq("title", "barista"))
        b = ast.Or(eq("title", "barista"), eq("title", "chef"))
        assert equivalent(a, b, wb)

    def test_and_chains_flatten(self, wb):
        x, y, z = eq("title", "chef"), eq("location", "downtown"), eq(
            "name", "frank")
        a = ast.And(ast.And(x, y), z)
        b = ast.And(x, ast.And(y, z))
        assert equivalent(a, b, wb)

    def test_add_and_mult_commute(self, wb):
        a = ast.BinOp(ast.BinaryOp.ADD, ast.ColumnRef("hours"),
                      ast.ColumnRef("othours"))
        b = ast.BinOp(ast.BinaryOp.ADD, ast.ColumnRef("othours"),
                      ast.ColumnRef("hours"))
        assert equivalent(a, b, wb)

    def test_sub_does_not_commute(self, wb):
        a = ast.BinOp(ast.BinaryOp.SUB, ast.ColumnRef("hours"),
                      ast.ColumnRef("othours"))
        b = ast.BinOp(ast.BinaryOp.SUB, ast.ColumnRef("othours"),
                      ast.ColumnRef("hours"))
        assert not equivalent(a, b, wb)

    def test_and_vs_or_not_equivalent(self, wb):
        a = ast.And(eq("title", "chef"), eq("location", "downtown"))
        b = ast.Or(eq("title", "chef"), eq("location", "downtown"))
        assert not equivalent(a, b, wb)


class TestComparisons:
    def test_flipped_comparison(self, wb):
        lit = ast.Lit(CellValue.number(20))
        a = ast.Compare(ast.RelOp.LT, ast.ColumnRef("hours"), lit)
        b = ast.Compare(ast.RelOp.GT, lit, ast.ColumnRef("hours"))
        assert equivalent(a, b, wb)

    def test_flipped_equality(self, wb):
        lit = ast.Lit(CellValue.text("chef"))
        a = ast.Compare(ast.RelOp.EQ, ast.ColumnRef("title"), lit)
        b = ast.Compare(ast.RelOp.EQ, lit, ast.ColumnRef("title"))
        assert equivalent(a, b, wb)

    def test_lt_vs_gt_not_equivalent(self, wb):
        lit = ast.Lit(CellValue.number(20))
        a = ast.Compare(ast.RelOp.LT, ast.ColumnRef("hours"), lit)
        b = ast.Compare(ast.RelOp.GT, ast.ColumnRef("hours"), lit)
        assert not equivalent(a, b, wb)


class TestPrograms:
    def test_whole_program_equivalence(self, wb):
        a = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("totalpay"), ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        b = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("totalpay", "Employees"),
            ast.GetTable("Employees"),
            ast.And(eq("title", "barista"), eq("location", "capitol hill")),
        )
        assert equivalent(a, b, wb)

    def test_different_reduce_ops_differ(self, wb):
        a = ast.Reduce(ast.ReduceOp.SUM, ast.ColumnRef("hours"),
                       ast.GetTable(), ast.TrueF())
        b = ast.Reduce(ast.ReduceOp.AVG, ast.ColumnRef("hours"),
                       ast.GetTable(), ast.TrueF())
        assert not equivalent(a, b, wb)

    def test_select_cells_column_order_irrelevant(self, wb):
        a = ast.SelectCells(
            (ast.ColumnRef("hours"), ast.ColumnRef("othours")),
            ast.GetTable(), ast.TrueF(),
        )
        b = ast.SelectCells(
            (ast.ColumnRef("othours"), ast.ColumnRef("hours")),
            ast.GetTable(), ast.TrueF(),
        )
        assert equivalent(a, b, wb)

    def test_format_spec_order_irrelevant(self, wb):
        q = ast.SelectRows(ast.GetTable(), ast.TrueF())
        a = ast.FormatCells(
            ast.FormatSpec((FormatFn.color("red"), FormatFn.bold())), q
        )
        b = ast.FormatCells(
            ast.FormatSpec((FormatFn.bold(), FormatFn.color("red"))), q
        )
        assert equivalent(a, b, wb)

    def test_canonicalization_idempotent(self, wb):
        program = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("totalpay"), ast.GetTable(),
            ast.And(eq("title", "chef"), eq("location", "downtown")),
        )
        once = canonicalize(program, wb)
        assert canonicalize(once, wb) == once
