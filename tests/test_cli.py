"""Tests for the package CLI (python -m repro ...)."""

from __future__ import annotations

import subprocess
import sys

import pytest


def run_cli(*args, stdin=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=180, input=stdin,
    )


class TestTranslate:
    def test_demo_sheet(self):
        proc = run_cli("translate", "sum the hours", "--sheet", "payroll")
        assert proc.returncode == 0, proc.stderr
        assert "=SUM(D2:D13)" in proc.stdout

    def test_execute_flag(self):
        proc = run_cli(
            "translate", "count the employees", "--sheet", "payroll",
            "--execute",
        )
        assert "-> 12" in proc.stdout

    def test_csv_input(self, tmp_path):
        csv = tmp_path / "team.csv"
        csv.write_text("name,points\nalpha,3\nbeta,5\n")
        proc = run_cli(
            "translate", "sum the points", "--csv", str(csv), "--execute"
        )
        assert proc.returncode == 0, proc.stderr
        assert "-> 8" in proc.stdout

    def test_unknown_sheet_rejected(self):
        proc = run_cli("translate", "sum the hours", "--sheet", "budget")
        assert proc.returncode != 0

    def test_translation_error_exits_2_one_line(self):
        proc = run_cli("translate", "   ", "--sheet", "payroll")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1
        assert "empty_description" in proc.stderr

    def test_bad_csv_exits_2_one_line(self, tmp_path):
        csv = tmp_path / "bad.csv"
        csv.write_text("a,b\n1,2,3\n")  # over-long row
        proc = run_cli("translate", "sum the a", "--csv", str(csv))
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "ragged_row" in proc.stderr

    def test_short_csv_rows_are_repaired(self, tmp_path):
        csv = tmp_path / "team.csv"
        csv.write_text("name,points\nalpha,3\nbeta\ngamma,5\n")
        proc = run_cli(
            "translate", "sum the points", "--csv", str(csv), "--execute"
        )
        assert proc.returncode == 0, proc.stderr
        assert "-> 8" in proc.stdout

    def test_deadline_flag_accepted(self):
        proc = run_cli(
            "translate", "sum the hours", "--sheet", "payroll",
            "--deadline", "30000",
        )
        assert proc.returncode == 0, proc.stderr
        assert "=SUM(D2:D13)" in proc.stdout


class TestCorpus:
    def test_head_prints_descriptions(self):
        proc = run_cli("corpus", "--head", "5")
        assert proc.returncode == 0
        lines = proc.stdout.strip().splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("payroll-01\tpayroll\t")

    def test_dump_writes_file(self, tmp_path):
        target = tmp_path / "corpus.tsv"
        proc = run_cli("corpus", "--dump", str(target))
        assert proc.returncode == 0
        assert target.exists()
        assert len(target.read_text().strip().splitlines()) == 3570


class TestRules:
    def test_prints_base_rules(self):
        proc = run_cli("rules")
        assert proc.returncode == 0
        assert "Sum(□C1" in proc.stdout
        assert "rules)" in proc.stderr


class TestRepl:
    def test_scripted_session(self):
        proc = run_cli("repl", "--sheet", "payroll",
                       stdin="sum the othours\n:quit\n")
        assert proc.returncode == 0, proc.stderr
        assert "-> 23" in proc.stdout  # sum of the othours column

    def test_translation_error_keeps_loop_alive(self):
        proc = run_cli(
            "repl", "--sheet", "payroll",
            stdin="> > >\nsum the othours\n:quit\n",
        )
        assert proc.returncode == 0, proc.stderr
        assert "error [symbols_only]" in proc.stdout
        assert "-> 23" in proc.stdout  # the loop survived the error


class TestEvalkitCli:
    @pytest.mark.parametrize("experiment", ["fig1", "table1"])
    def test_cheap_experiments(self, experiment):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.evalkit", experiment],
            capture_output=True, text=True, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

    def test_sampled_table2(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.evalkit", "table2",
             "--sample", "16"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Table 2" in proc.stdout
        assert "payroll" in proc.stdout


class TestServe:
    def test_line_oriented_session(self):
        proc = run_cli(
            "serve", "--sheet", "payroll", "--workers", "1",
            stdin="sum the hours\n:stats\n:quit\n",
        )
        assert proc.returncode == 0, proc.stderr
        assert "# gateway up: 1 workers" in proc.stdout
        assert "[full] =SUM(D2:D13)" in proc.stdout
        assert "submitted=1 ok=1" in proc.stdout
        assert "worker 0:" in proc.stdout

    def test_error_lines_are_coded_not_raised(self):
        proc = run_cli(
            "serve", "--sheet", "payroll", "--workers", "1",
            stdin="???\n:q\n",
        )
        assert proc.returncode == 0, proc.stderr
        assert "error [empty_description]:" in proc.stdout


class TestBatch:
    def test_file_batch_reports_summary(self, tmp_path):
        batch = tmp_path / "requests.txt"
        batch.write_text("sum the hours\ncount the employees\n")
        proc = run_cli(
            "batch", str(batch), "--workers", "1", "--repeat", "2"
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("<- sum the hours") == 2
        assert proc.stdout.count("<- count the employees") == 2
        assert "# 4 requests in" in proc.stdout
        assert "ok 4, shed 0 (0.0%), crashed 0" in proc.stdout
        assert "p50" in proc.stdout and "p95" in proc.stdout

    def test_stdin_batch(self):
        proc = run_cli(
            "batch", "-", "--workers", "1",
            stdin="sum the hours\n",
        )
        assert proc.returncode == 0, proc.stderr
        assert "[full] =SUM(D2:D13)" in proc.stdout

    def test_empty_batch_is_an_error(self):
        proc = run_cli("batch", "-", stdin="\n\n")
        assert proc.returncode == 2
        assert "empty_batch" in proc.stderr
