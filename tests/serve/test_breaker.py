"""Circuit breaker state machine: closed → open → half-open → closed."""

from __future__ import annotations

import threading

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestCircuitBreaker:
    def test_closed_allows_and_failures_below_threshold_stay_closed(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never saw 2 consecutive

    def test_threshold_opens_and_open_fast_fails(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # concurrent requests keep failing fast

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_the_clock(self, clock):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed: reopen immediately
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # next probe window

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)


class TestHalfOpenConcurrency:
    """The half-open probe window raced by many threads at once.

    The single-probe guarantee is only meaningful under concurrency: N
    threads hitting ``allow()`` the instant the reset window elapses must
    admit exactly one, every time, and recovery/reopening must behave the
    same whether the competing requests arrive before or after the probe
    reports back.
    """

    N_THREADS = 16

    def _race_allow(self, breaker) -> list[bool]:
        """N threads call ``allow()`` simultaneously; returns the votes."""
        barrier = threading.Barrier(self.N_THREADS)
        votes: list[bool] = [False] * self.N_THREADS

        def contender(i: int) -> None:
            barrier.wait()
            votes[i] = breaker.allow()

        threads = [
            threading.Thread(target=contender, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        return votes

    def test_exactly_one_probe_admitted_under_contention(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        votes = self._race_allow(breaker)
        assert sum(votes) == 1, f"admitted {sum(votes)} probes, want 1"
        assert breaker.state == HALF_OPEN

    def test_probe_success_reopens_the_floodgates(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert sum(self._race_allow(breaker)) == 1
        breaker.record_success()
        assert breaker.state == CLOSED
        # closed again: every concurrent request flows
        assert all(self._race_allow(breaker))

    def test_probe_failure_relocks_against_the_crowd(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert sum(self._race_allow(breaker)) == 1
        breaker.record_failure()  # the probe failed
        assert breaker.state == OPEN
        # still inside the new reset window: nobody gets through
        assert not any(self._race_allow(breaker))
        clock.advance(1.0)
        # next window: again exactly one probe, no matter the contention
        assert sum(self._race_allow(breaker)) == 1

    def test_repeated_windows_admit_one_probe_each(self, clock):
        """Ten failure → wait → race cycles: the invariant holds every
        cycle, not just the first (state must fully reset on reopen)."""
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=0.5, clock=clock
        )
        breaker.record_failure()
        for _ in range(10):
            clock.advance(0.5)
            assert sum(self._race_allow(breaker)) == 1
            breaker.record_failure()  # probe fails: reopen, window restarts
            assert not breaker.allow()


class TestBreakerBoard:
    def test_keys_are_independent(self, clock):
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.record_failure("poisoned")
        assert not board.allow("poisoned")
        assert board.allow("healthy")
        assert board.states() == {"poisoned": OPEN, "healthy": CLOSED}

    def test_success_heals_only_its_key(self, clock):
        board = BreakerBoard(failure_threshold=1, reset_timeout=0.0, clock=clock)
        board.record_failure("a")
        board.record_failure("b")
        assert board.allow("a")  # zero reset_timeout: immediate probe
        board.record_success("a")
        assert board.states()["a"] == CLOSED
        assert board.states()["b"] == OPEN
