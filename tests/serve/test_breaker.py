"""Circuit breaker state machine: closed → open → half-open → closed."""

from __future__ import annotations

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestCircuitBreaker:
    def test_closed_allows_and_failures_below_threshold_stay_closed(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never saw 2 consecutive

    def test_threshold_opens_and_open_fast_fails(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # concurrent requests keep failing fast

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_the_clock(self, clock):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed: reopen immediately
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # next probe window

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)


class TestBreakerBoard:
    def test_keys_are_independent(self, clock):
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.record_failure("poisoned")
        assert not board.allow("poisoned")
        assert board.allow("healthy")
        assert board.states() == {"poisoned": OPEN, "healthy": CLOSED}

    def test_success_heals_only_its_key(self, clock):
        board = BreakerBoard(failure_threshold=1, reset_timeout=0.0, clock=clock)
        board.record_failure("a")
        board.record_failure("b")
        assert board.allow("a")  # zero reset_timeout: immediate probe
        board.record_success("a")
        assert board.states()["a"] == CLOSED
        assert board.states()["b"] == OPEN
