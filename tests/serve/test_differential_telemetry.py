"""Differential harness: the telemetry plane must never change an answer.

Telemetry is always on in production, so its observation points sit
directly in the request path — the gateway hub, the worker-side delta
tracker riding reply-pipe messages, the SLO engine, the tail sampler.
This harness runs the Table 2 test split through a telemetry-on gateway
and a telemetry-off gateway and asserts every ranking-observable field
serialises to identical bytes.  A telemetry bug that perturbs a score,
reorders a candidate, or changes a tier anywhere fails this test.

``REPRO_DIFF_LIMIT`` caps the number of descriptions (evenly subsampled;
default: the full test split, which is what the acceptance bar requires).
CI's quick lane sets a low limit; the slow lane and local runs take the
full split.
"""

from __future__ import annotations

import os

import pytest

from repro.dataset import SHEET_ORDER, Corpus, build_sheet
from repro.serve import GatewayConfig, TranslationGateway

pytestmark = pytest.mark.slow

_LIMIT = os.environ.get("REPRO_DIFF_LIMIT")


@pytest.fixture(scope="module")
def test_split():
    descriptions = Corpus.default().test
    if _LIMIT:
        n = int(_LIMIT)
        if 0 < n < len(descriptions):
            step = len(descriptions) / n
            descriptions = [descriptions[int(k * step)] for k in range(n)]
    return descriptions


def _serialise(result) -> bytes:
    """Everything ranking-observable about a reply, as bytes.

    Deliberately excludes serving diagnostics (timing, worker ids):
    telemetry never touches the ranked answer, but the clock reads differ.
    """
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [f"{program}\t{score!r}" for program, score in result.programs]
    lines.append(f"top_formula={result.top_formula}")
    lines.append(f"n_candidates={result.n_candidates}")
    return "\n".join(lines).encode()


def _run_split(test_split, workbooks, telemetry: bool):
    gateway = TranslationGateway(
        config=GatewayConfig(
            workers=2,
            queue_limit=len(test_split) + 4,
            telemetry=telemetry,
            cache=False,  # every request does the full compute
        )
    )
    try:
        pendings = [
            gateway.submit(d.text, workbooks[d.sheet_id]) for d in test_split
        ]
        results = [p.result(timeout=600.0) for p in pendings]
        rendered = gateway.metrics.render()
    finally:
        gateway.close(drain=True)
    return results, rendered


def test_telemetry_on_equals_telemetry_off(test_split):
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    with_telemetry, on_metrics = _run_split(test_split, workbooks, True)
    without_telemetry, off_metrics = _run_split(test_split, workbooks, False)

    mismatches = []
    for d, on, off in zip(test_split, with_telemetry, without_telemetry):
        if _serialise(on) != _serialise(off):
            mismatches.append((d.sheet_id, d.text))
    assert not mismatches, (
        f"{len(mismatches)}/{len(test_split)} rankings changed with "
        f"telemetry on, e.g. {mismatches[:3]}"
    )

    # Sanity on the knob itself: the on pass really observed traffic and
    # the off pass really skipped the plane.
    assert "telemetry_requests_total" in on_metrics
    assert "slo_events_total" in on_metrics
    assert "telemetry_requests_total" not in off_metrics
