"""Deterministic wait helpers for the serving tests.

Raw ``time.sleep(<guess>)`` waits are both slow (the guess must be
generous enough for the slowest CI box) and flaky (a loaded box can
outlast any guess).  These helpers poll an observable condition under a
hard deadline instead: a test waits exactly as long as the condition
takes, and a genuine hang fails *at the wait* with a message naming the
condition, not three assertions later with a confusing counter value.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")

DEFAULT_TIMEOUT = 10.0
DEFAULT_INTERVAL = 0.005

__all__ = ["wait_until", "wait_for_result", "wait_dispatched"]


def wait_until(
    predicate: Callable[[], T],
    timeout: float = DEFAULT_TIMEOUT,
    interval: float = DEFAULT_INTERVAL,
    message: str | None = None,
) -> T:
    """Poll ``predicate`` until it returns something truthy (returned).

    Raises ``AssertionError`` if ``timeout`` seconds pass first.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"condition not met within {timeout:.1f}s"
            )
        time.sleep(interval)


def wait_for_result(
    produce: Callable[[], T],
    accept: Callable[[T], object],
    timeout: float = DEFAULT_TIMEOUT,
    interval: float = 0.02,
    message: str | None = None,
) -> T:
    """Call ``produce`` until ``accept(result)`` is truthy; returns it.

    For conditions that are only observable by performing an operation —
    e.g. probing a circuit breaker's reset window, where the state flips
    lazily on the next admission check.
    """
    deadline = time.monotonic() + timeout
    while True:
        result = produce()
        if accept(result):
            return result
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"no accepted result within {timeout:.1f}s"
            )
        time.sleep(interval)


def wait_dispatched(
    gateway, n: int = 1, timeout: float = DEFAULT_TIMEOUT
) -> None:
    """Wait until ``n`` requests are in flight on live worker processes.

    The live-process check matters for kill tests: once a slot's worker
    is observably alive with the request dispatched, a SIGKILL lands
    mid-request rather than before the (lazy) spawn.
    """
    def dispatched():
        stats = gateway.stats()
        return stats.in_flight >= n and any(w.alive for w in stats.workers)

    wait_until(
        dispatched,
        timeout=timeout,
        message=f"fewer than {n} requests reached a live worker "
                f"within {timeout:.1f}s",
    )
