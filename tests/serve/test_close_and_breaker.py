"""Direct unit coverage for shutdown orderings and breaker cache purges.

``tests/serve/test_gateway.py`` proves the headline contracts (drain
serves queued work, no-drain codes it, drain timeout resolves every
waiter).  This module pins the *orderings and interactions* that were
previously exercised only incidentally by chaos storms:

* queued requests drain in FIFO submission order;
* ``close`` is idempotent and safe in either drain mode after the first;
* ``close(drain=False)`` accounts its rejections (``closed_rejected``)
  and leaves the stats ledger balanced;
* a request cancelled before ``close`` is not resolved a second time;
* a breaker trip purges cached results for the tripping workbook
  **only** — other fingerprints keep their entries;
* after the reset window, a successful probe closes the breaker and the
  purged entry is recomputed (miss) before it caches again (hit).
"""

from __future__ import annotations

import threading

import pytest

from repro.dataset import build_sheet
from repro.serve import GatewayConfig, TranslationGateway

from ..conftest import make_payroll
from .waiters import wait_until

FAST = dict(restart_backoff=0.01, restart_backoff_cap=0.1)
SLOW_FAULT = "tokenize:delay:0.5"


@pytest.fixture(scope="module")
def payroll_wb():
    return make_payroll()


class TestCloseOrderings:
    def test_drain_serves_queued_in_fifo_order(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        order: list[int] = []
        # Pin the worker so the next three requests queue up behind it.
        busy = gateway.submit("sum the hours", faults=SLOW_FAULT)
        wait_until(lambda: gateway.stats().in_flight >= 1)
        sentences = ["count the employees", "average the rate", "sum the hours"]
        pendings = []
        for i, sentence in enumerate(sentences):
            pending = gateway.submit(sentence)
            pending.add_done_callback(lambda _r, i=i: order.append(i))
            pendings.append(pending)
        gateway.close(drain=True)
        assert busy.result(timeout=0.0) is not None
        assert [p.result(timeout=0.0).ok for p in pendings] == [True] * 3
        assert order == [0, 1, 2], "drain must serve the queue FIFO"

    def test_close_is_idempotent_across_drain_modes(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        pending = gateway.submit("sum the hours")
        gateway.close(drain=True)
        assert pending.result(timeout=0.0).ok
        # A second close — in either mode — is a harmless no-op.
        gateway.close(drain=False)
        gateway.close(drain=True)
        assert gateway.translate("sum the hours").error_code == "gateway_closed"

    def test_no_drain_accounts_closed_rejected(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        busy = gateway.submit("sum the hours", faults=SLOW_FAULT)
        wait_until(lambda: gateway.stats().in_flight >= 1)
        queued = [gateway.submit("count the employees") for _ in range(3)]
        gateway.close(drain=False)
        for pending in queued:
            assert pending.result(timeout=0.0).error_code == "gateway_closed"
        assert busy.result(timeout=0.0).ok
        stats = gateway.stats()
        assert stats.closed_rejected == 3
        assert stats.submitted == stats.completed == 4
        assert stats.queue_depth == 0 and stats.in_flight == 0

    def test_no_drain_resolves_queued_before_waiting_on_workers(self, payroll_wb):
        """``drain=False`` must code the queue *immediately* — while the
        in-flight request is still running — not after the pool settles."""
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        busy = gateway.submit("sum the hours", faults="tokenize:delay:1.0")
        wait_until(lambda: gateway.stats().in_flight >= 1)
        queued = gateway.submit("count the employees")
        resolved_early = threading.Event()
        queued.add_done_callback(
            lambda _r: resolved_early.set() if not busy.done() else None
        )
        gateway.close(drain=False)
        assert queued.result(timeout=0.0).error_code == "gateway_closed"
        assert resolved_early.is_set(), (
            "queued request was not failed until the in-flight one finished"
        )
        assert busy.result(timeout=0.0).ok

    def test_cancelled_request_is_not_resolved_again_by_close(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        busy = gateway.submit("sum the hours", faults=SLOW_FAULT)
        wait_until(lambda: gateway.stats().in_flight >= 1)
        queued = gateway.submit("count the employees")
        resolutions: list[str] = []
        queued.add_done_callback(lambda r: resolutions.append(r.error_code))
        assert queued.cancel() is True
        gateway.close(drain=False)
        assert resolutions == ["cancelled"]
        stats = gateway.stats()
        assert stats.cancelled == 1
        assert stats.closed_rejected == 0
        assert busy.result(timeout=0.0) is not None


class TestBreakerPurge:
    def _gateway(self, workbook, **overrides):
        return TranslationGateway(
            workbook,
            GatewayConfig(
                workers=1, cache=True, breaker_threshold=2,
                breaker_reset=overrides.pop("breaker_reset", 60.0),
                restart_backoff=0.01, restart_backoff_cap=0.1,
            ),
        )

    def _trip(self, gateway, workbook):
        for _ in range(2):
            crashed = gateway.translate(
                "sum the hours", workbook, faults="worker_crash:raise"
            )
            assert crashed.error_code == "worker_crashed"

    def test_purge_is_scoped_to_the_tripping_fingerprint(self):
        payroll, inventory = make_payroll(), build_sheet("inventory")
        gateway = self._gateway(payroll)
        try:
            gateway.translate("sum the hours", payroll)
            gateway.translate("count the name", inventory)
            assert gateway.translate("count the name", inventory).cached
            before = gateway.stats().cache.size
            assert before >= 2

            self._trip(gateway, payroll)

            stats = gateway.stats()
            open_keys = [k for k, s in stats.breakers.items() if s == "open"]
            assert len(open_keys) == 1
            assert stats.cache.invalidated >= 1
            # The other workbook's entry survived the purge and still hits.
            assert gateway.translate("count the name", inventory).cached
            # The tripped workbook fast-fails without consulting the cache.
            tripped = gateway.translate("sum the hours", payroll)
            assert tripped.error_code == "circuit_open"
        finally:
            gateway.close(drain=False)

    def test_probe_success_closes_and_cache_refills(self):
        payroll = make_payroll()
        gateway = self._gateway(payroll, breaker_reset=0.2)
        try:
            gateway.translate("sum the hours")
            assert gateway.translate("sum the hours").cached
            self._trip(gateway, payroll)
            assert gateway.translate("sum the hours").error_code == (
                "circuit_open"
            )
            wait_until(
                lambda: gateway.translate("sum the hours", wait=60.0).ok,
                timeout=30,
                message="half-open probe never succeeded",
            )
            # The probe recomputed the purged entry (a miss), so the next
            # identical request is a front-end hit again.
            assert gateway.translate("sum the hours").cached
            assert all(
                state == "closed" for state in gateway.stats().breakers.values()
            )
        finally:
            gateway.close(drain=True)
