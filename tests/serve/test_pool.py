"""Worker-pool respawn backoff, jitter, quarantine, fork fd hygiene."""

from __future__ import annotations

import random
import time

import pytest

from repro.serve import TranslationGateway, WorkerCrashed, WorkerPool

from ..conftest import make_payroll
from .waiters import wait_until


def make_pool(**overrides):
    defaults = dict(
        restart_backoff=0.1, restart_backoff_cap=2.0, restart_jitter=0.5
    )
    defaults.update(overrides)
    return WorkerPool(1, **defaults)


class TestBackoffDelay:
    def test_first_spawn_is_free(self):
        pool = make_pool()
        assert pool.backoff_delay(0) == 0.0

    def test_envelope_doubles_then_caps_with_jitter_off(self):
        pool = make_pool(restart_jitter=0.0)
        assert [pool.backoff_delay(n) for n in range(1, 7)] == [
            0.1, 0.2, 0.4, 0.8, 1.6, 2.0,  # capped at restart_backoff_cap
        ]

    def test_jitter_spreads_within_half_envelope(self):
        """With the default jitter of 0.5, each delay is uniform in
        [envelope/2, envelope] — never above the envelope (backoff still
        bounds the fork rate) and never below half (still a real wait)."""
        pool = make_pool(rng=random.Random(7))
        for n in range(1, 8):
            envelope = min(2.0, 0.1 * 2 ** (n - 1))
            delays = [pool.backoff_delay(n) for _ in range(200)]
            assert all(envelope / 2 <= d <= envelope for d in delays)
            # it really varies: a lockstep herd would see one value
            assert len({round(d, 9) for d in delays}) > 100

    def test_jitter_is_seedable_and_deterministic(self):
        a = make_pool(rng=random.Random(42))
        b = make_pool(rng=random.Random(42))
        assert [a.backoff_delay(3) for _ in range(10)] == [
            b.backoff_delay(3) for _ in range(10)
        ]

    def test_two_seeds_desynchronise_the_herd(self):
        """The point of the jitter: two slots crashing at the same moment
        sleep different amounts and do not re-fork in lockstep."""
        a = make_pool(rng=random.Random(1))
        b = make_pool(rng=random.Random(2))
        assert [a.backoff_delay(4) for _ in range(5)] != [
            b.backoff_delay(4) for _ in range(5)
        ]

    def test_zero_backoff_never_sleeps(self):
        pool = make_pool(restart_backoff=0.0)
        assert pool.backoff_delay(5) == 0.0

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            make_pool(restart_jitter=1.5)
        with pytest.raises(ValueError):
            make_pool(restart_jitter=-0.1)


class TestEnsureBackoff:
    def test_respawn_sleeps_the_jittered_delay(self):
        """``ensure`` after crashes sleeps exactly ``backoff_delay`` —
        verified with an injected clock (recorded sleeps) and a seeded
        rng predicting the jitter."""
        slept: list[float] = []
        pool = WorkerPool(
            1,
            restart_backoff=0.1,
            restart_backoff_cap=2.0,
            restart_jitter=0.5,
            sleep=slept.append,
            rng=random.Random(99),
        )
        try:
            pool.handles[0].consecutive_crashes = 3
            expected = random.Random(99).random()  # the one jitter draw
            pool.ensure(0)
            envelope = 0.4  # 0.1 * 2**(3-1)
            assert slept == [envelope * (1.0 - 0.5 * expected)]
            assert pool.handles[0].alive
        finally:
            pool.shutdown()

    def test_first_spawn_does_not_sleep(self):
        slept: list[float] = []
        pool = WorkerPool(1, sleep=slept.append)
        try:
            pool.ensure(0)
            assert slept == []
        finally:
            pool.shutdown()


class TestQuarantine:
    def test_quarantined_ensure_raises_without_forking(self):
        pool = make_pool()
        try:
            assert pool.quarantine() == 0  # nothing was alive yet
            assert pool.quarantined
            with pytest.raises(WorkerCrashed, match="quarantined"):
                pool.ensure(0)
            assert not pool.handles[0].alive  # no fork happened
        finally:
            pool.shutdown()

    def test_quarantine_kills_live_workers(self):
        pool = make_pool()
        try:
            pool.ensure(0)
            assert pool.handles[0].alive
            assert pool.quarantine() == 1
            # SIGKILL is asynchronous; join via retire on shutdown below
        finally:
            pool.shutdown()
        assert not pool.handles[0].alive


class TestForkFdHygiene:
    def test_kill_wakes_in_flight_calls_despite_sibling_pool_forks(self):
        """SIGKILLing a worker must EOF its pipe *promptly* even when
        sibling pools fork workers concurrently in the same parent.

        With the ``fork`` start method a concurrently-forked sibling can
        inherit another worker's child pipe end if its fork lands inside
        the pipe-create → parent-close window; the leaked copy keeps the
        pipe open past the worker's death, so the blocked runner only
        wakes at its full timeout instead of on EOF.  The pool guards the
        window with a process-wide fork lock — this test pins the
        contract at the gateway level: two gateways fork workers at the
        same moment, one is quarantined mid-request, and its hung
        requests must resolve as ``worker_crashed`` long before the
        300-second request timeout.
        """
        a = TranslationGateway(
            make_payroll(), workers=2, request_timeout=300.0, cache=False,
            restart_backoff=0.01, restart_backoff_cap=0.1,
        )
        b = TranslationGateway(
            make_payroll(), workers=2, request_timeout=300.0, cache=False,
            restart_backoff=0.01, restart_backoff_cap=0.1,
        )
        try:
            # Both gateways fork lazily on first dispatch — submitting to
            # them back-to-back makes their runner threads fork workers
            # concurrently, the exact interleaving that used to leak fds.
            hung = [
                a.submit("sum the hours", faults="tokenize:delay:120.0")
                for _ in range(2)
            ]
            warm = [b.submit("sum the hours") for _ in range(2)]
            wait_until(
                lambda: a.stats().in_flight >= 2
                and all(w.alive for w in a.stats().workers),
                timeout=30.0,
                message="hung requests never dispatched on gateway A",
            )
            for pending in warm:
                assert pending.result(timeout=60.0).ok
            start = time.monotonic()
            assert a.quarantine() == 2
            results = [p.result(timeout=30.0) for p in hung]
            woke_after = time.monotonic() - start
            assert woke_after < 15.0, (
                f"EOF after SIGKILL took {woke_after:.1f}s — a leaked "
                "child pipe end is keeping dead workers' pipes open"
            )
            for result in results:
                assert not result.ok
                assert result.error_code == "worker_crashed"
        finally:
            a.close(drain=False)
            b.close(drain=False)
