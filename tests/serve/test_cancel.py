"""PendingResult.cancel(): abandoned requests release their queue slot.

The regression this suite pins down: an HTTP client that disconnects
used to leave its queued request occupying a bounded-queue slot until a
worker finally served it into the void.  ``cancel()`` withdraws a
*queued* request immediately (slot freed, future resolved with code
``cancelled``); a request already executing on a worker is not
preemptible and ``cancel()`` reports that with ``False``.
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardedCluster
from repro.serve import TranslationGateway

from ..conftest import make_payroll
from .waiters import wait_until

FAST = dict(restart_backoff=0.01, restart_backoff_cap=0.1)
SLOW_FAULT = "tokenize:delay:1.5"  # pins the single worker for a while


@pytest.fixture(scope="module")
def payroll_wb():
    return make_payroll()


class TestGatewayCancel:
    def test_cancel_queued_request_frees_the_slot(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1, queue_limit=1, **FAST
        ) as gateway:
            # Pin the worker, then fill the single queue slot.
            busy = gateway.submit("sum the hours", faults=SLOW_FAULT)
            wait_until(
                lambda: gateway.stats().in_flight >= 1,
                message="first request never dispatched",
            )
            queued = gateway.submit("count the employees")
            # Queue is full now: a third submit sheds.
            shed = gateway.submit("average the rate").result(timeout=10)
            assert shed.error_code == "shed_overload"

            assert queued.cancel() is True
            cancelled = queued.result(timeout=10)
            assert cancelled.ok is False
            assert cancelled.error_code == "cancelled"
            assert cancelled.total_seconds >= 0.0

            # The slot is free again: a new submit is admitted (not shed)
            # and eventually served.
            replacement = gateway.submit("sum the hours")
            result = replacement.result(timeout=60)
            assert result.error_code != "shed_overload"
            assert result.ok

            stats = gateway.stats()
            assert stats.cancelled == 1
            assert busy.result(timeout=60) is not None

    def test_cancel_is_idempotent(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1, queue_limit=4, **FAST
        ) as gateway:
            busy = gateway.submit("sum the hours", faults=SLOW_FAULT)
            wait_until(lambda: gateway.stats().in_flight >= 1)
            queued = gateway.submit("count the employees")
            assert queued.cancel() is True
            assert queued.cancel() is False  # already resolved
            assert queued.result(timeout=10).error_code == "cancelled"
            assert gateway.stats().cancelled == 1
            busy.result(timeout=60)

    def test_cancel_after_resolution_is_false(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            pending = gateway.submit("sum the hours")
            result = pending.result(timeout=60)
            assert result.ok
            assert pending.cancel() is False

    def test_cancel_dispatched_request_is_false(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            pending = gateway.submit("sum the hours", faults=SLOW_FAULT)
            wait_until(lambda: gateway.stats().in_flight >= 1)
            # Already on the worker: not preemptible.
            assert pending.cancel() is False
            assert pending.result(timeout=60) is not None

    def test_cancelled_shows_in_metrics_counter(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1, queue_limit=4, **FAST
        ) as gateway:
            busy = gateway.submit("sum the hours", faults=SLOW_FAULT)
            wait_until(lambda: gateway.stats().in_flight >= 1)
            queued = gateway.submit("count the employees")
            assert queued.cancel()
            assert gateway.stats().cancelled == 1
            busy.result(timeout=60)


class TestClusterCancel:
    def test_cancel_queued_request_in_shard(self):
        cluster = ShardedCluster(
            make_payroll(), shards=1, workers_per_shard=1,
            queue_limit=2, **FAST,
        )
        try:
            busy = cluster.submit("sum the hours", faults=SLOW_FAULT)
            wait_until(
                lambda: cluster.stats().shards[0].gateway.in_flight >= 1,
                message="pin request never dispatched",
            )
            queued = cluster.submit("count the employees")
            assert queued.cancel() is True
            result = queued.result(timeout=10)
            assert result.error_code == "cancelled"
            assert cluster.stats().cancelled >= 1
            busy.result(timeout=60)
        finally:
            cluster.close(drain=False)

    def test_cancelled_request_is_not_retried(self):
        """``cancelled`` is terminal: it must never enter the retry loop
        (it is deliberately not in RETRYABLE_CODES)."""
        from repro.cluster.cluster import RETRYABLE_CODES

        assert "cancelled" not in RETRYABLE_CODES

    def test_cancel_resolved_cluster_request_is_false(self):
        with ShardedCluster(
            make_payroll(), shards=1, workers_per_shard=1, **FAST
        ) as cluster:
            pending = cluster.submit("sum the hours")
            assert pending.result(timeout=60) is not None
            assert pending.cancel() is False
