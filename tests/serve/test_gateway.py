"""TranslationGateway: admission control, crash containment, breakers,
affinity, and shutdown — every path resolves to a coded result."""

from __future__ import annotations

import pytest

from repro.serve import TranslationGateway
from repro.sheet import CellValue

from ..conftest import make_payroll
from .waiters import wait_dispatched, wait_for_result

RUNNING_EXAMPLE = "sum the totalpay for the capitol hill baristas"
RUNNING_ANSWER = '=SUMIFS(H2:H7, B2:B7, "capitol hill", C2:C7, "barista")'

FAST = dict(restart_backoff=0.01, restart_backoff_cap=0.1)


@pytest.fixture(scope="module")
def payroll_wb():
    return make_payroll()


class TestHappyPath:
    def test_translate_returns_formula_and_diagnostics(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            result = gateway.translate(RUNNING_EXAMPLE, wait=60.0)
            assert result.ok
            assert result.error_code is None
            assert result.top_formula == RUNNING_ANSWER
            assert result.top_program is not None
            assert result.tier == "full" and not result.degraded
            assert result.n_candidates >= 1
            assert result.worker_id == 0
            assert result.fingerprint == payroll_wb.fingerprint()
            assert result.total_seconds >= result.queue_seconds >= 0.0

    def test_repeat_fingerprint_hits_warm_worker(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            first = gateway.translate("sum the hours", wait=60.0)
            second = gateway.translate("count the employees", wait=60.0)
            assert not first.warm
            assert second.warm
            stats = gateway.stats()
            assert stats.workers[0].warm_fingerprints == 1
            assert stats.workers[0].served == 2

    def test_translate_many_preserves_order(self, payroll_wb):
        sentences = ["sum the hours", RUNNING_EXAMPLE, "count the employees"]
        with TranslationGateway(payroll_wb, workers=2, **FAST) as gateway:
            results = gateway.translate_many(sentences, wait=60.0)
        assert [r.ok for r in results] == [True, True, True]
        assert results[1].top_formula == RUNNING_ANSWER

    def test_service_level_errors_pass_through(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            result = gateway.translate("   ", wait=60.0)
            assert not result.ok
            assert result.error_code == "empty_description"
            stats = gateway.stats()
            # a structured translation error is a healthy worker: the
            # breaker stays closed and nothing counts as a crash
            assert stats.crashed == 0
            assert list(stats.breakers.values()) == ["closed"]

    def test_multiple_workbooks_multiple_fingerprints(self, payroll_wb):
        other = make_payroll()
        other.table("Employees").cell(0, 3).value = CellValue.number(99)
        with TranslationGateway(workers=1, **FAST) as gateway:
            a = gateway.translate("sum the hours", payroll_wb, wait=60.0)
            b = gateway.translate("sum the hours", other, wait=60.0)
            assert a.ok and b.ok
            assert a.fingerprint != b.fingerprint
            assert gateway.stats().registered_workbooks == 2


class TestCrashContainment:
    def test_worker_crash_yields_coded_result_and_recovers(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            crashed = gateway.translate(
                RUNNING_EXAMPLE, faults="worker_crash:raise", wait=60.0
            )
            assert not crashed.ok
            assert crashed.error_code == "worker_crashed"
            healthy = gateway.translate(RUNNING_EXAMPLE, wait=60.0)
            assert healthy.ok
            assert healthy.top_formula == RUNNING_ANSWER
            stats = gateway.stats()
            assert stats.crashed == 1
            assert stats.restarts >= 1  # the slot respawned

    def test_external_kill_mid_request(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            pending = gateway.submit(
                "sum the hours", faults="tokenize:delay:2.0"
            )
            wait_dispatched(gateway)  # the request is now inside the worker
            assert gateway.kill_worker(0)
            result = pending.result(timeout=60.0)
            assert not result.ok
            assert result.error_code == "worker_crashed"
            assert gateway.translate("sum the hours", wait=60.0).ok

    def test_hung_worker_is_killed_and_coded_worker_timeout(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1, timeout_grace=0.2, **FAST
        ) as gateway:
            result = gateway.translate(
                "sum the hours", deadline=0.3,
                faults="tokenize:delay:5.0", wait=60.0,
            )
            assert not result.ok
            assert result.error_code == "worker_timeout"
            assert gateway.stats().timed_out == 1
            # the hung process was killed, not reused
            follow_up = gateway.translate("sum the hours", wait=60.0)
            assert follow_up.ok


class TestAdmissionControl:
    def test_expired_deadline_is_shed_at_submit(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            result = gateway.translate("sum the hours", deadline=0.0, wait=60.0)
            assert not result.ok
            assert result.error_code == "shed_overload"
            assert gateway.stats().shed == 1

    def test_full_queue_sheds_immediately(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1, queue_limit=1, **FAST
        ) as gateway:
            slow = gateway.submit("sum the hours", faults="tokenize:delay:0.5")
            wait_dispatched(gateway)  # the slow request left the queue
            queued = gateway.submit("count the employees")
            shed = gateway.submit("sum the hours")
            shed_result = shed.result(timeout=60.0)
            assert shed_result.error_code == "shed_overload"
            assert "queue full" in shed_result.error
            assert slow.result(timeout=60.0).ok
            assert queued.result(timeout=60.0).ok

    def test_deadline_expiring_in_queue_is_shed_at_dispatch(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            slow = gateway.submit("sum the hours", faults="tokenize:delay:0.5")
            wait_dispatched(gateway)
            doomed = gateway.submit("count the employees", deadline=0.1)
            result = doomed.result(timeout=60.0)
            assert result.error_code == "shed_overload"
            assert "deadline expired" in result.error
            assert slow.result(timeout=60.0).ok


class TestCircuitBreaker:
    def test_breaker_opens_fast_fails_then_heals(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1,
            breaker_threshold=2, breaker_reset=0.3, **FAST,
        ) as gateway:
            for _ in range(2):
                crashed = gateway.translate(
                    "sum the hours", faults="worker_crash:raise", wait=60.0
                )
                assert crashed.error_code == "worker_crashed"
            fingerprint = payroll_wb.fingerprint()
            assert gateway.stats().breakers[fingerprint] == "open"

            rejected = gateway.translate("sum the hours", wait=60.0)
            assert rejected.error_code == "circuit_open"
            assert rejected.worker_id is None  # fast-failed before dispatch
            assert gateway.stats().circuit_rejected == 1

            # The reset window opens lazily on the next admission check:
            # keep probing until one is admitted past the open breaker.
            probe = wait_for_result(
                lambda: gateway.translate("sum the hours", wait=60.0),
                lambda r: r.error_code != "circuit_open",
                message="breaker reset window never admitted a probe",
            )
            assert probe.ok
            assert gateway.stats().breakers[fingerprint] == "closed"

    def test_failed_probe_reopens(self, payroll_wb):
        with TranslationGateway(
            payroll_wb, workers=1,
            breaker_threshold=1, breaker_reset=0.2, **FAST,
        ) as gateway:
            gateway.translate(
                "sum the hours", faults="worker_crash:raise", wait=60.0
            )
            probe = wait_for_result(
                lambda: gateway.translate(
                    "sum the hours", faults="worker_crash:raise", wait=60.0
                ),
                lambda r: r.error_code != "circuit_open",
                message="breaker reset window never admitted a probe",
            )
            assert probe.error_code == "worker_crashed"
            fingerprint = payroll_wb.fingerprint()
            assert gateway.stats().breakers[fingerprint] == "open"
            assert gateway.translate("sum the hours", wait=60.0).error_code == (
                "circuit_open"
            )


class TestShutdown:
    def test_submit_after_close_is_coded(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        gateway.close(drain=True)
        result = gateway.translate("sum the hours", wait=60.0)
        assert result.error_code == "gateway_closed"

    def test_drain_serves_queued_requests(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        pendings = [
            gateway.submit("sum the hours"),
            gateway.submit("count the employees"),
            gateway.submit(RUNNING_EXAMPLE),
        ]
        gateway.close(drain=True)
        results = [p.result(timeout=60.0) for p in pendings]
        assert all(r.ok for r in results)

    def test_no_drain_fails_queued_but_finishes_in_flight(self, payroll_wb):
        gateway = TranslationGateway(payroll_wb, workers=1, **FAST)
        in_flight = gateway.submit("sum the hours", faults="tokenize:delay:0.5")
        wait_dispatched(gateway)
        queued = gateway.submit("count the employees")
        gateway.close(drain=False)
        assert queued.result(timeout=60.0).error_code == "gateway_closed"
        assert in_flight.result(timeout=60.0).ok

    def test_drain_timeout_resolves_every_waiter(self, payroll_wb):
        """Regression: a drain that cannot finish within its budget used to
        return with queued/in-flight ``PendingResult``s still unresolved,
        leaving callers to block until their own timeouts.  ``close`` must
        resolve *everything* before returning: queued requests as
        ``gateway_closed``, the hung in-flight one through pool teardown
        (``worker_crashed``)."""
        gateway = TranslationGateway(
            payroll_wb, workers=1, request_timeout=300.0, **FAST
        )
        hung = gateway.submit("sum the hours", faults="tokenize:delay:120.0")
        wait_dispatched(gateway)  # the hang occupies the only worker
        queued = [gateway.submit("count the employees") for _ in range(3)]
        gateway.close(drain=True, timeout=0.5)
        # close() has returned: every future must already be resolved
        assert hung.done()
        assert all(p.done() for p in queued)
        hung_result = hung.result(timeout=0.0)
        assert not hung_result.ok
        assert hung_result.error_code == "worker_crashed"
        for pending in queued:
            result = pending.result(timeout=0.0)
            assert result.error_code == "gateway_closed"
            assert "drain timed out" in result.error
        stats = gateway.stats()
        assert stats.completed == stats.submitted == 4
        assert stats.in_flight == 0 and stats.queue_depth == 0


class TestPendingResultCallbacks:
    def test_callback_fires_once_on_resolution(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            fired = []
            pending = gateway.submit("sum the hours")
            pending.add_done_callback(fired.append)
            result = pending.result(timeout=60.0)
            assert fired == [result]

    def test_callback_added_after_resolution_fires_immediately(
        self, payroll_wb
    ):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            pending = gateway.submit("sum the hours")
            result = pending.result(timeout=60.0)
            fired = []
            pending.add_done_callback(fired.append)
            assert fired == [result]

    def test_callback_exception_does_not_poison_resolution(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=1, **FAST) as gateway:
            pending = gateway.submit("sum the hours")
            fired = []

            def bad(result):
                raise RuntimeError("callback bug")

            pending.add_done_callback(bad)
            pending.add_done_callback(fired.append)
            result = pending.result(timeout=60.0)
            assert result.ok
            assert fired == [result]  # later callbacks still ran
            # the already-resolved (immediate-fire) path contains the
            # exception too — same contract regardless of timing
            pending.add_done_callback(bad)
            pending.add_done_callback(fired.append)
            assert fired == [result, result]


class TestStatsAccounting:
    def test_every_submit_is_completed_exactly_once(self, payroll_wb):
        with TranslationGateway(payroll_wb, workers=2, **FAST) as gateway:
            outcomes = []
            outcomes.append(gateway.translate("sum the hours", wait=60.0))
            outcomes.append(gateway.translate(
                "sum the hours", faults="worker_crash:raise", wait=60.0
            ))
            outcomes.append(gateway.translate(
                "sum the hours", deadline=0.0, wait=60.0
            ))
            outcomes.append(gateway.translate("   ", wait=60.0))
            stats = gateway.stats()
            assert stats.submitted == 4
            assert stats.completed == 4
            assert stats.queue_depth == 0
            assert stats.in_flight == 0
            assert stats.ok == 1
            assert stats.crashed == 1
            assert stats.shed == 1
            assert stats.failed == 1
            assert stats.shed_rate == pytest.approx(0.25)
            assert all(
                o.ok or o.error_code is not None for o in outcomes
            )
