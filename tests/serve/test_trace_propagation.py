"""One request, one tree — across the gateway's process boundary.

The tracing satellite's acceptance tests: a traced gateway request must
yield a single stitched trace tree whose root is ``gateway.request`` and
whose leaves include the worker-side spans that travelled back in the
reply — even when the worker crashed (or was SIGKILLed) mid-translation,
in which case the tree carries a synthesized ``worker_crashed`` span
instead of the worker's own records.  A storm of traced requests must
account for every admitted request: exactly one root per trace, no
dangling parent links, no trace lost.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.obs import Tracer
from repro.serve import TranslationGateway

from ..conftest import make_payroll
from .waiters import wait_until

SENTENCE = "sum the totalpay where the location is capitol hill"


def traces_of(records):
    """Group span records by trace id."""
    by_trace: dict[str, list[dict]] = {}
    for record in records:
        by_trace.setdefault(record["trace_id"], []).append(record)
    return by_trace


def assert_tree(spans):
    """One root, every parent link resolves; returns (root, by_id)."""
    by_id = {s["span_id"]: s for s in spans}
    roots = [s for s in spans if not s["parent_id"]]
    assert len(roots) == 1, (
        f"want exactly 1 root, got {[s['name'] for s in roots]}"
    )
    for span in spans:
        if span["parent_id"]:
            assert span["parent_id"] in by_id, (
                f"dangling parent on {span['name']!r}"
            )
    return roots[0], by_id


def test_single_request_yields_one_stitched_tree():
    tracer = Tracer()
    gateway = TranslationGateway(
        make_payroll(), workers=1, cache=False, tracer=tracer
    )
    try:
        result = gateway.translate(SENTENCE, wait=60.0)
        assert result.ok
    finally:
        gateway.close(drain=True)

    by_trace = traces_of(tracer.finished())
    assert len(by_trace) == 1
    [spans] = by_trace.values()
    root, by_id = assert_tree(spans)
    names = {s["name"] for s in spans}

    # parent-side spans
    assert root["name"] == "gateway.request"
    assert root["status"] == "ok"
    assert root["attrs"]["tier"] == result.tier
    assert {"gateway.queue", "gateway.worker_call"} <= names
    # worker-side spans, adopted across the process boundary
    assert {"worker.translate", "service.request", "translate"} <= names
    [worker_root] = [s for s in spans if s["name"] == "worker.translate"]
    [call] = [s for s in spans if s["name"] == "gateway.worker_call"]
    assert worker_root["parent_id"] == call["span_id"]
    assert worker_root["pid"] != root["pid"]  # genuinely cross-process

    # adopted timestamps were aligned into the parent's clock domain
    for span in spans:
        assert span["start"] >= root["start"] - 1e-3
        assert span["end"] <= root["end"] + 1e-3


def test_crashed_worker_still_yields_complete_tree():
    tracer = Tracer()
    gateway = TranslationGateway(
        make_payroll(), workers=1, cache=False, tracer=tracer,
        restart_backoff=0.01,
    )
    try:
        result = gateway.translate(
            SENTENCE, faults="worker_crash:raise", wait=60.0
        )
        assert not result.ok
        assert result.error_code == "worker_crashed"
    finally:
        gateway.close(drain=True)

    by_trace = traces_of(tracer.finished())
    assert len(by_trace) == 1
    [spans] = by_trace.values()
    root, by_id = assert_tree(spans)
    assert root["name"] == "gateway.request"
    assert root["status"] == "error"
    names = {s["name"] for s in spans}
    assert "worker_crashed" in names  # the synthesized crash marker
    [crashed] = [s for s in spans if s["name"] == "worker_crashed"]
    assert crashed["status"] == "error"
    assert by_id[crashed["parent_id"]]["name"] == "gateway.worker_call"
    [call] = [s for s in spans if s["name"] == "gateway.worker_call"]
    assert call["status"] == "error"


def test_sigkilled_worker_still_yields_complete_tree():
    """A real SIGKILL mid-translation, not a cooperative fault."""
    tracer = Tracer()
    gateway = TranslationGateway(
        make_payroll(), workers=1, cache=False, tracer=tracer,
        restart_backoff=0.01,
    )
    try:
        pending = gateway.submit(SENTENCE, faults="tokenize:delay:30.0")
        wait_until(lambda: gateway.stats().in_flight == 1, timeout=30.0)
        assert gateway.kill_worker(0)
        result = pending.result(60.0)
        assert not result.ok
        assert result.error_code == "worker_crashed"
    finally:
        gateway.close(drain=True)

    by_trace = traces_of(tracer.finished())
    assert len(by_trace) == 1
    [spans] = by_trace.values()
    root, _ = assert_tree(spans)
    assert root["status"] == "error"
    assert "worker_crashed" in {s["name"] for s in spans}


def test_cache_hit_closes_trace_without_worker_spans():
    tracer = Tracer()
    gateway = TranslationGateway(
        make_payroll(), workers=1, cache=True, tracer=tracer
    )
    try:
        gateway.translate(SENTENCE, wait=60.0)  # cold: fills the cache
        hit = gateway.translate(SENTENCE, wait=60.0)
        assert hit.cached
    finally:
        gateway.close(drain=True)

    by_trace = traces_of(tracer.finished())
    assert len(by_trace) == 2
    hit_spans = next(
        spans for spans in by_trace.values()
        if any(s["attrs"].get("cached") for s in spans)
    )
    root, _ = assert_tree(hit_spans)
    assert root["name"] == "gateway.request"
    assert root["attrs"]["cached"] is True
    assert "gateway.worker_call" not in {s["name"] for s in hit_spans}


def test_shed_request_trace_is_closed_with_error():
    tracer = Tracer()
    gateway = TranslationGateway(
        make_payroll(), workers=1, cache=False, queue_limit=1, tracer=tracer,
    )
    try:
        blocker = gateway.submit(SENTENCE, faults="tokenize:delay:0.5")
        queued = gateway.submit(SENTENCE, faults="tokenize:delay:0.1")
        shed = []
        while True:  # fill the queue until admission control sheds
            result = gateway.submit(SENTENCE, deadline=0.001).result(10.0)
            if result.error_code == "shed_overload":
                shed.append(result)
                break
        blocker.result(60.0), queued.result(60.0)
    finally:
        gateway.close(drain=True)

    records = tracer.finished()
    shed_roots = [
        r for r in records
        if r["name"] == "gateway.request" and r["status"] == "error"
        and r["attrs"].get("error_code") == "shed_overload"
    ]
    assert shed_roots, "shed request left no closed root span"


def test_untraced_gateway_emits_nothing_and_sends_no_trace_context():
    gateway = TranslationGateway(make_payroll(), workers=1, cache=False)
    try:
        assert gateway.tracer.enabled is False
        result = gateway.translate(SENTENCE, wait=60.0)
        assert result.ok
        assert gateway.tracer.finished() == []
    finally:
        gateway.close(drain=True)


@pytest.mark.slow
def test_storm_traces_account_for_every_admitted_request():
    """Chaos accounting: kills notwithstanding, submitted == roots."""
    n_requests, workers = 40, 2
    tracer = Tracer()
    gateway = TranslationGateway(
        workers=workers,
        queue_limit=n_requests + workers,
        breaker_threshold=10_000,
        restart_backoff=0.01,
        restart_backoff_cap=0.1,
        cache=False,
        tracer=tracer,
    )
    workbook = make_payroll()
    rng = random.Random(20140622)
    stop_killing = threading.Event()

    def killer():
        while not stop_killing.wait(0.05):
            gateway.kill_worker(rng.randrange(workers))

    chaos = threading.Thread(target=killer)
    chaos.start()
    try:
        pendings = [
            gateway.submit(SENTENCE, workbook=workbook, deadline=60.0)
            for _ in range(n_requests)
        ]
        results = [p.result(120.0) for p in pendings]
    finally:
        stop_killing.set()
        chaos.join()
        gateway.close(drain=True)

    assert len(results) == n_requests
    by_trace = traces_of(tracer.finished())
    roots = []
    for spans in by_trace.values():
        root, _ = assert_tree(spans)
        roots.append(root)
    assert len(roots) == n_requests
    assert all(r["name"] == "gateway.request" for r in roots)
    # every root closed with a definite outcome
    ok_roots = [r for r in roots if r["status"] == "ok"]
    assert len(ok_roots) == sum(r.ok for r in results)
