"""Workbook fingerprints: stability, sensitivity, and the payload registry."""

from __future__ import annotations

from repro.serve import (
    WorkbookRegistry,
    load_payload,
    workbook_fingerprint,
    workbook_payload,
)
from repro.sheet import CellValue, FormatFn

from ..conftest import make_payroll


class TestFingerprint:
    def test_identical_content_identical_fingerprint(self):
        assert make_payroll().fingerprint() == make_payroll().fingerprint()

    def test_clone_preserves_fingerprint(self):
        workbook = make_payroll()
        assert workbook.clone().fingerprint() == workbook.fingerprint()

    def test_value_change_changes_fingerprint(self):
        workbook = make_payroll()
        before = workbook.fingerprint()
        workbook.table("Employees").cell(0, 3).value = CellValue.number(31)
        assert workbook.fingerprint() != before

    def test_format_change_changes_fingerprint(self):
        workbook = make_payroll()
        before = workbook.fingerprint()
        workbook.table("Employees").cell(0, 0).apply_formats(
            [FormatFn("bold", True)]
        )
        assert workbook.fingerprint() != before

    def test_cursor_and_scratch_change_fingerprint(self):
        workbook = make_payroll()
        before = workbook.fingerprint()
        workbook.set_cursor("Z9")
        moved = workbook.fingerprint()
        assert moved != before
        workbook.set_value("Z9", CellValue.number(7))
        assert workbook.fingerprint() != moved

    def test_selection_changes_fingerprint(self):
        workbook = make_payroll()
        before = workbook.fingerprint()
        table = workbook.table("Employees")
        workbook.select_rows(table, [0, 2])
        assert workbook.fingerprint() != before

    def test_fingerprint_is_hex_digest(self):
        fingerprint = make_payroll().fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # parses as hex


class TestPayload:
    def test_round_trip_preserves_fingerprint_and_answers(self):
        workbook = make_payroll()
        twin = load_payload(workbook_payload(workbook))
        assert twin.fingerprint() == workbook.fingerprint()
        assert twin.table("Employees").n_rows == 6
        assert twin.cursor == workbook.cursor

    def test_registry_memoises_payload(self):
        registry = WorkbookRegistry()
        workbook = make_payroll()
        fp1, payload1 = registry.register(workbook)
        fp2, payload2 = registry.register(make_payroll())
        assert fp1 == fp2 == workbook_fingerprint(workbook)
        assert payload1 is payload2  # pickled exactly once
        assert len(registry) == 1
        assert registry.fingerprints == [fp1]

    def test_registry_distinguishes_different_workbooks(self):
        registry = WorkbookRegistry()
        first = make_payroll()
        second = make_payroll()
        second.table("Employees").cell(0, 3).value = CellValue.number(99)
        fp1, _ = registry.register(first)
        fp2, _ = registry.register(second)
        assert fp1 != fp2
        assert len(registry) == 2
        assert registry.payload(fp1) is not None
