"""Chaos: kill workers at random under sustained concurrent load.

The headline robustness guarantee for the gateway — with processes dying
underneath it, every submitted request still resolves to exactly one
coded result.  Nothing is lost, nothing raises, and with generous
deadlines nothing is shed (the only legitimate shed is a deadline the
gateway could not meet).

``REPRO_CHAOS_REQUESTS`` scales the load (default 200, the acceptance
floor; CI sets it lower for speed).

``REPRO_CHAOS_TRACE_DIR`` (optional) makes each storm run traced and
dumps the span log there afterwards — CI sets it and uploads the files
as an artifact when a chaos job fails, so a red storm leaves behind the
full per-request trace trees instead of just an assertion message.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.obs import Tracer
from repro.obs.export import write_spans_jsonl
from repro.serve import TranslationGateway
from repro.sheet import CellValue

from ..conftest import make_payroll
from .waiters import wait_until

N_REQUESTS = int(os.environ.get("REPRO_CHAOS_REQUESTS", "200"))
WORKERS = 3
DEADLINE = 60.0  # generous: any shed under chaos would be a real bug

SENTENCES = [
    "sum the hours",
    "count the employees",
    "sum the totalpay for the capitol hill baristas",
    "average the rate",
]


def _other_payroll():
    workbook = make_payroll()
    workbook.table("Employees").cell(0, 3).value = CellValue.number(99)
    return workbook


@pytest.fixture
def chaos_tracer(request):
    """A tracer for the storm, dumped as a CI artifact when asked.

    Tracing is only armed when ``REPRO_CHAOS_TRACE_DIR`` is set (the
    default storm stays untraced, same as before this fixture existed).
    The dump is unconditional once armed; CI's artifact upload step is
    gated on job failure, so green runs cost nothing to keep.
    """
    out_dir = os.environ.get("REPRO_CHAOS_TRACE_DIR")
    tracer = Tracer() if out_dir else None
    yield tracer
    if out_dir and tracer is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{request.node.name}.spans.jsonl")
        n = write_spans_jsonl(tracer, path)
        print(f"chaos trace: {n} spans -> {path}")


@pytest.mark.slow
def test_random_worker_kills_lose_nothing(chaos_tracer):
    workbooks = [make_payroll(), _other_payroll()]
    rng = random.Random(20140622)  # NLyze's SIGMOD year, for reproducibility
    gateway = TranslationGateway(
        workers=WORKERS,
        queue_limit=N_REQUESTS + WORKERS,
        # chaos kills are environmental, not workbook poison: a breaker
        # tripping on them would mask the invariant under test
        breaker_threshold=10_000,
        restart_backoff=0.01,
        restart_backoff_cap=0.1,
        tracer=chaos_tracer,
    )
    stop_killing = threading.Event()

    def killer():
        while not stop_killing.wait(rng.uniform(0.05, 0.25)):
            gateway.kill_worker(rng.randrange(WORKERS))

    chaos = threading.Thread(target=killer, name="chaos-killer", daemon=True)
    try:
        pendings = [
            gateway.submit(
                SENTENCES[i % len(SENTENCES)],
                workbooks[i % len(workbooks)],
                deadline=DEADLINE,
            )
            for i in range(N_REQUESTS)
        ]
        # Land one deterministic kill while the queue is genuinely deep:
        # respawns are lazy (a dead slot restarts on its next dispatch),
        # so at small REPRO_CHAOS_REQUESTS the random killer's first kill
        # can arrive after the queue drained and never cause a restart.
        wait_until(
            lambda: gateway.stats().in_flight >= 1
            and any(w.alive for w in gateway.stats().workers),
            message="storm never started",
        )
        gateway.kill_worker()
        chaos.start()
        results = [p.result(timeout=300.0) for p in pendings]
    finally:
        stop_killing.set()
        chaos.join(timeout=5.0)
        gateway.close(drain=False)

    # zero lost requests: one coded result per submission
    assert len(results) == N_REQUESTS
    for result in results:
        assert result.ok or result.error_code is not None

    stats = gateway.stats()
    assert stats.submitted == N_REQUESTS
    assert stats.completed == N_REQUESTS
    assert stats.in_flight == 0 and stats.queue_depth == 0

    # deadlines were generous, so admission control had no right to shed
    assert stats.shed == 0

    # the only failure codes chaos may produce are the crash-containment
    # ones; anything else (gateway_error, internal_error) is a bug
    codes = {r.error_code for r in results if not r.ok}
    assert codes <= {"worker_crashed", "worker_timeout"}

    # the chaos thread really did bite: workers died and were respawned,
    # yet most requests still succeeded on healthy workers
    assert stats.restarts >= 1
    ok = sum(1 for r in results if r.ok)
    assert ok + stats.crashed + stats.timed_out == N_REQUESTS
    assert ok > 0


@pytest.mark.slow
def test_random_worker_kills_with_cache_enabled(chaos_tracer):
    """The chaos invariant must survive memoisation: with the cache warm
    and workers dying at random, nothing is lost, nothing is shed, cached
    repeats keep answering, and no crashed worker leaves a partial entry
    behind (commits happen in the parent, only on complete replies)."""
    workbooks = [make_payroll(), _other_payroll()]
    rng = random.Random(20140622)
    n_requests = max(40, N_REQUESTS // 2)
    gateway = TranslationGateway(
        workers=WORKERS,
        queue_limit=n_requests + WORKERS,
        breaker_threshold=10_000,  # chaos kills must not trip a purge here
        restart_backoff=0.01,
        restart_backoff_cap=0.1,
        cache=True,
        tracer=chaos_tracer,
    )
    stop_killing = threading.Event()

    def killer():
        while not stop_killing.wait(rng.uniform(0.05, 0.25)):
            gateway.kill_worker(rng.randrange(WORKERS))

    chaos = threading.Thread(target=killer, name="chaos-killer", daemon=True)
    try:
        # Warm the cache with one clean pass before the storm.
        for workbook in workbooks:
            for sentence in SENTENCES:
                result = gateway.translate(
                    sentence, workbook, deadline=DEADLINE, wait=300.0
                )
                assert result.ok or result.error_code is not None
        warmed = gateway.stats().cache.size
        assert warmed > 0
        chaos.start()
        # Half the storm repeats warmed sentences (front-end hits), half
        # is fresh work that must cross the dying worker pool.
        pendings = [
            gateway.submit(
                SENTENCES[i % len(SENTENCES)]
                if i % 2 == 0
                else f"{SENTENCES[i % len(SENTENCES)]} {i}",
                workbooks[i % len(workbooks)],
                deadline=DEADLINE,
            )
            for i in range(n_requests)
        ]
        results = [p.result(timeout=300.0) for p in pendings]
    finally:
        stop_killing.set()
        chaos.join(timeout=5.0)
        gateway.close(drain=False)

    # Zero lost, zero shed — same bar as the uncached storm.
    assert len(results) == n_requests
    for result in results:
        assert result.ok or result.error_code is not None
    stats = gateway.stats()
    assert stats.completed == stats.submitted
    assert stats.in_flight == 0 and stats.queue_depth == 0
    assert stats.shed == 0
    codes = {r.error_code for r in results if not r.ok}
    assert codes <= {"worker_crashed", "worker_timeout"}

    # The warm half really was answered from the front end, and a cached
    # answer is by construction a success.
    assert stats.cache_hits > 0
    for result in results:
        if result.cached:
            assert result.ok and result.worker_id is None

    # No crashed worker committed a partial entry: every entry in the
    # cache is a complete, well-formed reply payload.
    expected_fields = {
        "tier", "programs", "n_candidates", "top_formula",
        "elapsed", "budget_spent",
    }
    entries = gateway._cache.entries()
    assert entries, "the clean warm pass must have committed entries"
    for key, payload in entries:
        assert set(payload) == expected_fields, f"partial entry under {key}"
        assert isinstance(payload["programs"], tuple)
        assert payload["n_candidates"] >= len(payload["programs"]) >= 0
        assert payload["tier"] is not None


@pytest.mark.slow
def test_poststorm_recovery():
    """After the storm, a fresh request on a respawned pool succeeds."""
    with TranslationGateway(
        make_payroll(), workers=2,
        restart_backoff=0.01, restart_backoff_cap=0.1,
    ) as gateway:
        # Workers spawn lazily on first dispatch: occupy both slots
        # concurrently so the storm has two live processes to kill — and
        # so the post-storm request must *re*spawn a used slot rather
        # than first-spawn a fresh one.
        warmup = [
            gateway.submit("sum the hours", faults="tokenize:delay:0.3")
            for _ in range(2)
        ]
        wait_until(lambda: gateway.stats().in_flight == 2)
        assert all(p.result(timeout=120.0).ok for p in warmup)
        killed = 0
        for _ in range(4):
            killed += gateway.kill_worker(0)
            killed += gateway.kill_worker(1)
            # SIGKILL is asynchronous: wait until no worker is observably
            # alive before the next round, so repeat kills are real.
            wait_until(
                lambda: not any(w.alive for w in gateway.stats().workers)
            )
        assert killed >= 1
        result = gateway.translate("sum the hours", wait=120.0)
        assert result.ok
        # respawn is lazy (per-slot, on next dispatch), so the follow-up
        # request revives at least the slot that served it
        assert gateway.stats().restarts >= 1
