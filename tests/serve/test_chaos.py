"""Chaos: kill workers at random under sustained concurrent load.

The headline robustness guarantee for the gateway — with processes dying
underneath it, every submitted request still resolves to exactly one
coded result.  Nothing is lost, nothing raises, and with generous
deadlines nothing is shed (the only legitimate shed is a deadline the
gateway could not meet).

``REPRO_CHAOS_REQUESTS`` scales the load (default 200, the acceptance
floor; CI sets it lower for speed).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.serve import TranslationGateway
from repro.sheet import CellValue

from ..conftest import make_payroll

N_REQUESTS = int(os.environ.get("REPRO_CHAOS_REQUESTS", "200"))
WORKERS = 3
DEADLINE = 60.0  # generous: any shed under chaos would be a real bug

SENTENCES = [
    "sum the hours",
    "count the employees",
    "sum the totalpay for the capitol hill baristas",
    "average the rate",
]


def _other_payroll():
    workbook = make_payroll()
    workbook.table("Employees").cell(0, 3).value = CellValue.number(99)
    return workbook


@pytest.mark.slow
def test_random_worker_kills_lose_nothing():
    workbooks = [make_payroll(), _other_payroll()]
    rng = random.Random(20140622)  # NLyze's SIGMOD year, for reproducibility
    gateway = TranslationGateway(
        workers=WORKERS,
        queue_limit=N_REQUESTS + WORKERS,
        # chaos kills are environmental, not workbook poison: a breaker
        # tripping on them would mask the invariant under test
        breaker_threshold=10_000,
        restart_backoff=0.01,
        restart_backoff_cap=0.1,
    )
    stop_killing = threading.Event()

    def killer():
        while not stop_killing.wait(rng.uniform(0.05, 0.25)):
            gateway.kill_worker(rng.randrange(WORKERS))

    chaos = threading.Thread(target=killer, name="chaos-killer", daemon=True)
    try:
        pendings = [
            gateway.submit(
                SENTENCES[i % len(SENTENCES)],
                workbooks[i % len(workbooks)],
                deadline=DEADLINE,
            )
            for i in range(N_REQUESTS)
        ]
        chaos.start()
        results = [p.result(timeout=300.0) for p in pendings]
    finally:
        stop_killing.set()
        chaos.join(timeout=5.0)
        gateway.close(drain=False)

    # zero lost requests: one coded result per submission
    assert len(results) == N_REQUESTS
    for result in results:
        assert result.ok or result.error_code is not None

    stats = gateway.stats()
    assert stats.submitted == N_REQUESTS
    assert stats.completed == N_REQUESTS
    assert stats.in_flight == 0 and stats.queue_depth == 0

    # deadlines were generous, so admission control had no right to shed
    assert stats.shed == 0

    # the only failure codes chaos may produce are the crash-containment
    # ones; anything else (gateway_error, internal_error) is a bug
    codes = {r.error_code for r in results if not r.ok}
    assert codes <= {"worker_crashed", "worker_timeout"}

    # the chaos thread really did bite: workers died and were respawned,
    # yet most requests still succeeded on healthy workers
    assert stats.restarts >= 1
    ok = sum(1 for r in results if r.ok)
    assert ok + stats.crashed + stats.timed_out == N_REQUESTS
    assert ok > 0


@pytest.mark.slow
def test_poststorm_recovery():
    """After the storm, a fresh request on a respawned pool succeeds."""
    with TranslationGateway(
        make_payroll(), workers=2,
        restart_backoff=0.01, restart_backoff_cap=0.1,
    ) as gateway:
        # workers spawn lazily on first dispatch: warm the pool up so the
        # storm has live processes to kill
        assert gateway.translate("sum the hours", wait=120.0).ok
        killed = 0
        for _ in range(4):
            killed += gateway.kill_worker(0)
            killed += gateway.kill_worker(1)
            time.sleep(0.02)
        assert killed >= 1
        result = gateway.translate("sum the hours", wait=120.0)
        assert result.ok
        # respawn is lazy (per-slot, on next dispatch), so the follow-up
        # request revives at least the slot that served it
        assert gateway.stats().restarts >= 1
