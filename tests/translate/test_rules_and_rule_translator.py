"""Tests for Rule objects, the builtin rule set, and Algo 3."""

import pytest

from repro.dsl import TypeChecker, ast
from repro.errors import RuleParseError
from repro.rules import builtin_rules
from repro.sheet import CellValue
from repro.translate import RuleSet, make_rule
from repro.translate.context import SheetContext
from repro.translate.rule_translator import RuleTranslator
from repro.translate.tokenizer import tokenize

_H = ast.Hole
_C = ast.HoleKind.COLUMN
_G = ast.HoleKind.GENERAL
_V = ast.HoleKind.VALUE
_L = ast.HoleKind.LITERAL


def sum_expr(cond=None):
    return ast.Reduce(
        ast.ReduceOp.SUM, _H(1, _C), ast.GetTable(),
        cond if cond is not None else _H(2, _G),
    )


@pytest.fixture
def ctx(payroll):
    return SheetContext(payroll)


@pytest.fixture
def checker(payroll):
    return TypeChecker(payroll, content_check=True)


def run_rule(rule, text, ctx, checker, tmap=None):
    translator = RuleTranslator(RuleSet([rule]), ctx, checker)
    tokens = tokenize(text)
    return translator.translate_span(tokens, 0, len(tokens), tmap or {})


class TestRuleValidation:
    def test_score_range_checked(self):
        with pytest.raises(RuleParseError):
            make_rule("r", "sum %C1", sum_expr(), score=1.5)

    def test_dangling_template_ident_rejected(self):
        with pytest.raises(RuleParseError):
            make_rule("r", "sum %C7", sum_expr())

    def test_unbound_hole_allowed(self):
        rule = make_rule("r", "sum %C1", sum_expr())
        assert rule.bound_idents == frozenset({1})

    def test_render_shows_template_and_expr(self):
        rule = make_rule("r", "sum (the)* %C1", sum_expr(ast.TrueF()))
        text = rule.render()
        assert "sum" in text and "%C1" in text and "Sum" in text

    def test_ruleset_by_name(self):
        rules = RuleSet([make_rule("r1", "sum %C1", sum_expr())])
        assert rules.by_name("r1").name == "r1"
        with pytest.raises(KeyError):
            rules.by_name("nope")


class TestRuleApplication:
    def test_column_hole_filled(self, ctx, checker):
        rule = make_rule("r", "sum (the)* %C1", sum_expr(ast.TrueF()))
        out = run_rule(rule, "sum the hours", ctx, checker)
        assert any(
            d.expr == ast.Reduce(ast.ReduceOp.SUM, ast.ColumnRef("hours"),
                                 ast.GetTable(), ast.TrueF())
            for d in out
        )

    def test_value_hole_filled(self, ctx, checker):
        rule = make_rule(
            "r", "%V1 %C2",
            ast.Compare(ast.RelOp.EQ, _H(2, _C), _H(1, _V)),
        )
        out = run_rule(rule, "chef titles", ctx, checker)
        exprs = {str(d.expr) for d in out}
        assert "Eq(title, chef)" in exprs

    def test_literal_hole_gets_both_typings(self, ctx, checker):
        rule = make_rule(
            "lt", "%C1 less than %L2",
            ast.Compare(ast.RelOp.LT, _H(1, _C), _H(2, _L)),
        )
        out = run_rule(rule, "totalpay less than 500", ctx, checker)
        # totalpay is currency -> only the currency literal survives Valid
        exprs = {str(d.expr) for d in out}
        assert "Lt(totalpay, $500)" in exprs
        assert "Lt(totalpay, 500)" not in exprs

    def test_general_hole_from_tmap(self, ctx, checker):
        filt = ast.Compare(
            ast.RelOp.EQ, ast.ColumnRef("title"), ast.Lit(CellValue.text("chef"))
        )
        from repro.translate.derivation import Derivation

        tmap = {(2, 4): [Derivation(expr=filt, used=frozenset([2, 3]))]}
        rule = make_rule("r", "sum %C1 %2", sum_expr())
        out = run_rule(rule, "sum hours chef titles", ctx, checker, tmap)
        assert any(
            isinstance(d.expr, ast.Reduce)
            and d.expr.condition == filt
            for d in out
        )

    def test_unbound_hole_left_open(self, ctx, checker):
        from repro.dsl.holes import is_complete

        rule = make_rule("r", "sum (the)* %C1", sum_expr())
        out = run_rule(rule, "sum the hours", ctx, checker)
        assert any(not is_complete(d.expr) for d in out)

    def test_used_words_include_pattern_matches(self, ctx, checker):
        rule = make_rule("r", "sum (the)* %C1", sum_expr(ast.TrueF()))
        (d,) = [
            d for d in run_rule(rule, "sum the hours", ctx, checker)
            if d.expr.condition == ast.TrueF()
        ]
        assert d.used == frozenset([0, 1, 2])
        assert d.used_cols == frozenset([2])

    def test_slack_word_not_marked_used(self, ctx, checker):
        rule = make_rule("r", "sum (the)*! %C1", sum_expr(ast.TrueF()))
        out = run_rule(rule, "sum zorp hours", ctx, checker)
        assert out
        assert all(1 not in d.used for d in out)

    def test_shared_ident_binds_once(self, ctx, checker):
        expr = ast.Compare(
            ast.RelOp.EQ, _H(1, _C),
            ast.Reduce(ast.ReduceOp.MAX, _H(1, _C), ast.GetTable(), ast.TrueF()),
        )
        rule = make_rule("argmax", "largest %C1", expr)
        out = run_rule(rule, "largest totalpay", ctx, checker)
        assert len(out) >= 1
        d = out[0]
        assert len(d.rule_children) == 1
        assert d.mix_score == 1.0


class TestBuiltinRules:
    def test_rule_count_near_paper(self):
        rules = builtin_rules()
        assert 90 <= len(rules) <= 130  # paper: 105

    def test_all_templates_parse_and_validate(self):
        for rule in builtin_rules():
            assert rule.template
            assert 0 < rule.score <= 1

    def test_names_unique(self):
        names = [r.name for r in builtin_rules()]
        assert len(names) == len(set(names))

    def test_covers_operator_families(self):
        names = {r.name for r in builtin_rules()}
        for prefix in ("sum", "avg", "min", "max", "count", "lt", "gt",
                       "eq", "not", "and", "or", "select", "argmax",
                       "format_red", "getformat_red"):
            assert any(n.startswith(prefix) for n in names), prefix
