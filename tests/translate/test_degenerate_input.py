"""Hardening against degenerate input: whitespace, symbols, oversized and
garbage descriptions must produce a clean TranslationError (with a stable
code) or a candidate list — never IndexError/MemoryError/crashes."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError, TranslationError
from repro.runtime import Budget
from repro.translate import Translator

from ..conftest import make_payroll


@pytest.fixture(scope="module")
def translator() -> Translator:
    return Translator(make_payroll())


class TestDegenerateInput:
    @pytest.mark.parametrize("text", ["", "   ", "\t\n", "...", "?!,;:"])
    def test_empty_or_whitespace(self, translator, text):
        with pytest.raises(TranslationError) as err:
            translator.translate(text)
        assert err.value.code == "empty_description"

    @pytest.mark.parametrize(
        "text", [">", "> > >", "( ) + * / < > =", "%%% @@@ !!!"]
    )
    def test_symbols_only(self, translator, text):
        with pytest.raises(TranslationError) as err:
            translator.translate(text)
        assert err.value.code == "symbols_only"

    def test_over_long_description(self, translator):
        text = "sum " * 201
        with pytest.raises(TranslationError) as err:
            translator.translate(text)
        assert err.value.code == "description_too_long"

    def test_exactly_at_limit_is_accepted(self, translator):
        # A 200-token all-noise description is legal input; a tight budget
        # keeps the O(n^3) DP from dominating the suite (the anytime path
        # returns whatever exists, possibly nothing).
        text = " ".join(["noise"] * Translator.MAX_TOKENS)
        candidates = translator.translate(
            text, budget=Budget(deadline=1.0, max_derivations=5000)
        )
        assert isinstance(candidates, list)

    def test_long_unicode_repeats(self, translator):
        with pytest.raises(TranslationError):
            translator.translate("ä " * 500)


class TestFuzzNoCrash:
    """Random garbage through the full pipeline: the only acceptable
    outcomes are a ranked list or a TranslationError."""

    ALPHABETS = [
        "abcdefghijklmnopqrstuvwxyz",
        "0123456789$%.,",
        "<>=+*/()",
        "äöüßéèñ中文字日本語",
        "\x00\x01\x07\x1b\x7f",  # control characters
        " \t",
    ]

    def _garbage(self, rng: random.Random) -> str:
        n = rng.randint(1, 60)
        out = []
        for _ in range(n):
            alphabet = rng.choice(self.ALPHABETS)
            word = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(1, 12))
            )
            # long repeats stress the spell corrector and the DP
            if rng.random() < 0.1:
                word = word * rng.randint(2, 30)
            out.append(word)
        return " ".join(out)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_garbage(self, translator, seed):
        rng = random.Random(seed)
        text = self._garbage(rng)
        budget = Budget(deadline=0.5, max_derivations=10_000)
        try:
            candidates = translator.translate(text, budget=budget)
        except TranslationError:
            return
        except ReproError as exc:  # pragma: no cover - would be a bug
            pytest.fail(f"non-translation ReproError for {text!r}: {exc}")
        assert isinstance(candidates, list)

    def test_mixed_valid_and_garbage(self, translator):
        text = "sum the \x07\x07 totalpay ￿ for ((((("
        candidates = translator.translate(text)
        assert isinstance(candidates, list)
