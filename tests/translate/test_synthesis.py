"""Unit tests for the type-directed synthesis algorithm (Algo 2)."""

import pytest

from repro.dsl import TypeChecker, ast
from repro.sheet import CellValue
from repro.translate.derivation import ATOM, Derivation
from repro.translate.synthesis import and_merge, comb_all, synthesize


@pytest.fixture
def checker(payroll):
    return TypeChecker(payroll, content_check=True)


def atom(expr, positions, score=1.0, cols=()):
    return Derivation(
        expr=expr, used=frozenset(positions), used_cols=frozenset(cols),
        kind=ATOM, rule_score=score,
    )


def num(x):
    return ast.Lit(CellValue.number(x))


def cur(x):
    return ast.Lit(CellValue.currency(x))


def col(name):
    return ast.ColumnRef(name)


def sum_open():
    return ast.Reduce(
        ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), ast.Hole(2)
    )


def lt_filter():
    return ast.Compare(ast.RelOp.LT, col("hours"), num(20))


class TestCombAll:
    def test_fills_matching_hole(self, checker):
        receiver = atom(sum_open(), [0])
        filler = atom(lt_filter(), [2, 3])
        results = comb_all(receiver, filler, checker)
        assert len(results) == 1
        assert results[0].expr == ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), lt_filter()
        )
        assert results[0].used == frozenset([0, 2, 3])

    def test_type_mismatch_rejected(self, checker):
        receiver = atom(sum_open(), [0])
        filler = atom(num(3), [2])  # a number is not a filter
        assert comb_all(receiver, filler, checker) == []

    def test_word_overlap_rejected(self, checker):
        receiver = atom(sum_open(), [0, 2])
        filler = atom(lt_filter(), [2, 3])
        assert comb_all(receiver, filler, checker) == []

    def test_column_words_exempt_from_overlap(self, checker):
        # Both use word 2, but as a *column* word on one side — allowed.
        receiver = atom(sum_open(), [0, 2], cols=[2])
        filler = atom(lt_filter(), [2, 3], cols=[2])
        assert comb_all(receiver, filler, checker)

    def test_open_filler_skipped(self, checker):
        receiver = atom(ast.Not(ast.Hole(1)), [0])
        open_filler = atom(
            ast.Compare(ast.RelOp.LT, ast.Hole(1, ast.HoleKind.COLUMN), num(20)),
            [1],
        )
        assert comb_all(receiver, open_filler, checker) == []

    def test_currency_disambiguation(self, checker):
        # The paper's §3.2 example: only the currency literal fits totalpay.
        receiver = atom(
            ast.Compare(
                ast.RelOp.LT, ast.Hole(1, ast.HoleKind.LITERAL), col("totalpay")
            ),
            [1],
        )
        good = comb_all(receiver, atom(cur(10), [0]), checker)
        bad = comb_all(receiver, atom(num(5), [2]), checker)
        assert len(good) == 1
        assert bad == []

    def test_restriction_respected(self, checker):
        receiver = atom(
            ast.Compare(
                ast.RelOp.EQ, ast.Hole(1, ast.HoleKind.COLUMN),
                ast.Lit(CellValue.text("chef")),
            ),
            [0],
        )
        # literal cannot fill a column-restricted hole
        assert comb_all(receiver, atom(num(5), [1]), checker) == []
        assert comb_all(receiver, atom(col("title"), [1]), checker)

    def test_nested_hole_filled(self, checker):
        receiver = atom(ast.Not(ast.Hole(1)), [0])
        filler = atom(lt_filter(), [1, 2])
        results = comb_all(receiver, filler, checker)
        assert results and isinstance(results[0].expr, ast.Not)


class TestAndMerge:
    def test_merges_two_filters(self, checker):
        a = atom(
            ast.Compare(ast.RelOp.EQ, col("location"),
                        ast.Lit(CellValue.text("capitol hill"))),
            [0, 1], score=0.85,
        )
        b = atom(
            ast.Compare(ast.RelOp.EQ, col("title"),
                        ast.Lit(CellValue.text("barista"))),
            [2], score=0.85,
        )
        merged = and_merge(a, b, checker) or and_merge(b, a, checker)
        assert merged is not None
        assert isinstance(merged.expr, ast.And)
        assert merged.used == frozenset([0, 1, 2])

    def test_single_canonical_order(self, checker):
        a = atom(
            ast.Compare(ast.RelOp.EQ, col("location"),
                        ast.Lit(CellValue.text("downtown"))),
            [0],
        )
        b = atom(
            ast.Compare(ast.RelOp.EQ, col("title"),
                        ast.Lit(CellValue.text("chef"))),
            [1],
        )
        produced = [m for m in (and_merge(a, b, checker),
                                and_merge(b, a, checker)) if m]
        assert len(produced) == 1

    def test_non_filters_not_merged(self, checker):
        a = atom(num(1), [0])
        b = atom(num(2), [1])
        assert and_merge(a, b, checker) is None

    def test_overlapping_words_not_merged(self, checker):
        f = ast.Compare(ast.RelOp.EQ, col("title"),
                        ast.Lit(CellValue.text("chef")))
        g = ast.Compare(ast.RelOp.EQ, col("location"),
                        ast.Lit(CellValue.text("downtown")))
        assert and_merge(atom(f, [0]), atom(g, [0]), checker) is None


class TestSynthesize:
    def test_paper_example(self, checker):
        """'for all hours less than 20 sum the totalpay': combine the open
        Sum with the Lt filter."""
        sum_deriv = atom(sum_open(), [6, 8])
        lt_deriv = atom(lt_filter(), [2, 3, 5])
        created = synthesize(
            [sum_deriv, lt_deriv], [lt_deriv], [sum_deriv], checker
        )
        exprs = {d.expr for d in created}
        assert ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), lt_filter()
        ) in exprs

    def test_multi_round_closure(self, checker):
        """Not(□) + Lt(...) needs one round, then Sum(□) + Not(Lt) another."""
        not_deriv = atom(ast.Not(ast.Hole(1)), [0])
        lt_deriv = atom(lt_filter(), [1, 2])
        sum_deriv = atom(sum_open(), [4])
        created = synthesize(
            [not_deriv, lt_deriv, sum_deriv],
            [not_deriv], [lt_deriv, sum_deriv],
            checker,
        )
        target = ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(),
            ast.Not(lt_filter()),
        )
        assert target in {d.expr for d in created}

    def test_max_new_bounds_output(self, checker):
        fillers = [atom(num(i), [i]) for i in range(10)]
        receiver = atom(ast.BinOp(ast.BinaryOp.ADD, ast.Hole(1), ast.Hole(2)), [20])
        created = synthesize(
            [receiver] + fillers, [receiver], fillers, checker, max_new=5
        )
        assert len(created) <= 5

    def test_no_duplicates(self, checker):
        sum_deriv = atom(sum_open(), [0])
        lt_deriv = atom(lt_filter(), [1, 2])
        created = synthesize(
            [sum_deriv, lt_deriv], [sum_deriv], [lt_deriv], checker
        )
        keys = [d.key() for d in created]
        assert len(keys) == len(set(keys))
