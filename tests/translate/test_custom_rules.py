"""Custom rule authoring: the extension surface users actually touch.

The Rule/RuleSet API is public: a deployment can add domain rules ("ytd" =
year-to-date sums, jargon verbs) without modifying the package.  These
tests pin that workflow, plus the ColorPat pattern type available to
custom formatting rules.
"""

import pytest

from repro.dsl import ast
from repro.rules import builtin_rules
from repro.sheet import CellValue, Table, ValueType, Workbook
from repro.translate import (
    ColorPat,
    RuleSet,
    SheetContext,
    Translator,
    make_rule,
)
from repro.translate.tokenizer import tokenize

_H = ast.Hole
_C = ast.HoleKind.COLUMN
_G = ast.HoleKind.GENERAL


def finance_workbook():
    workbook = Workbook()
    workbook.add_table(Table.from_data(
        "Ledger",
        ["account", "quarter", "revenue"],
        [
            ["retail", "q1", 100],
            ["retail", "q2", 120],
            ["online", "q1", 80],
            ["online", "q2", 95],
        ],
        types=[ValueType.TEXT, ValueType.TEXT, ValueType.CURRENCY],
    ))
    workbook.set_cursor("E2")
    return workbook


class TestCustomRuleSet:
    def test_domain_jargon_rule(self):
        """'book' is this team's jargon for summing revenue."""
        rules = builtin_rules()
        rules.add(make_rule(
            "book_revenue",
            "(book|booked) (the|total)* %C1 %2",
            ast.Reduce(ast.ReduceOp.SUM, _H(1, _C), ast.GetTable(), _H(2, _G)),
            score=0.9,
        ))
        translator = Translator(finance_workbook(), rules=rules)
        top = translator.translate("book the revenue for the retail account")[0]
        assert isinstance(top.program, ast.Reduce)
        result = top.execute(translator.workbook, place=False)
        assert result.value == CellValue.currency(220)

    def test_rules_can_be_replaced_entirely(self):
        only_rule = RuleSet([make_rule(
            "sum_only", "(sum) (the)* %C1",
            ast.Reduce(ast.ReduceOp.SUM, _H(1, _C), ast.GetTable(),
                       ast.TrueF()),
        )])
        translator = Translator(finance_workbook(), rules=only_rule)
        top = translator.translate("sum the revenue")[0]
        assert top.execute(translator.workbook, place=False).value == (
            CellValue.currency(395)
        )

    def test_custom_rule_composes_with_synthesis(self):
        """A custom rule's unbound hole gets filled by synthesis like any
        builtin — the uninterpreted-holes property the paper highlights."""
        rules = builtin_rules()
        rules.add(make_rule(
            "booked_open",
            "(booked) %C1",
            ast.Reduce(ast.ReduceOp.SUM, _H(1, _C), ast.GetTable(), _H(2, _G)),
            score=0.9,
        ))
        translator = Translator(finance_workbook(), rules=rules)
        top = translator.translate("booked revenue where quarter is q2")[0]
        result = top.execute(translator.workbook, place=False)
        assert result.value == CellValue.currency(215)


class TestColorPat:
    def test_matches_color_words(self, payroll):
        ctx = SheetContext(payroll)
        pattern = ColorPat(1)
        tokens = tokenize("red rows")
        assert list(pattern.ends(tokens, 0, 2, ctx)) == [1]
        assert list(pattern.ends(tokens, 1, 2, ctx)) == []

    def test_render(self):
        assert ColorPat(3).render() == "%K3"

    def test_usable_in_parse_template(self):
        from repro.translate import parse_template

        (pattern,) = parse_template("%K2")
        assert isinstance(pattern, ColorPat)
        assert pattern.ident == 2
