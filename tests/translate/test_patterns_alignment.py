"""Unit tests for the rule pattern language and alignment."""

import pytest

from repro.errors import RuleParseError
from repro.translate.alignment import align, quick_reject
from repro.translate.context import SheetContext
from repro.translate.patterns import (
    ColumnPat,
    LiteralPat,
    MustPat,
    OptPat,
    SpanPat,
    ValuePat,
    parse_template,
)
from repro.translate.tokenizer import tokenize


@pytest.fixture
def ctx(payroll):
    return SheetContext(payroll)


def toks(text):
    return tokenize(text)


class TestParseTemplate:
    def test_bare_word_is_must(self):
        (pattern,) = parse_template("sum")
        assert isinstance(pattern, MustPat)
        assert pattern.options == (("sum",),)

    def test_alternation_with_phrases(self):
        (pattern,) = parse_template("(sum|add up|total)")
        assert ("add", "up") in pattern.options

    def test_optional_group(self):
        (pattern,) = parse_template("(all|the)*")
        assert isinstance(pattern, OptPat)
        assert pattern.words == frozenset({"all", "the"})
        assert not pattern.slack

    def test_slack_group(self):
        (pattern,) = parse_template("(all|the)*!")
        assert pattern.slack

    def test_hole_patterns(self):
        patterns = parse_template("%C1 %V2 %L3 %4")
        assert isinstance(patterns[0], ColumnPat) and patterns[0].ident == 1
        assert isinstance(patterns[1], ValuePat) and patterns[1].ident == 2
        assert isinstance(patterns[2], LiteralPat) and patterns[2].ident == 3
        assert isinstance(patterns[3], SpanPat) and patterns[3].ident == 4

    def test_full_template(self):
        patterns = parse_template("sum (all|the)* %C1 %2")
        assert len(patterns) == 4

    @pytest.mark.parametrize("bad", ["", "()", "(a|b", "%X1", "(a))"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(RuleParseError):
            parse_template(bad)


class TestPatternEnds:
    def test_must_matches_phrase(self, ctx):
        (pattern,) = parse_template("(add up|sum)")
        tokens = toks("add up the hours")
        assert list(pattern.ends(tokens, 0, len(tokens), ctx)) == [2]

    def test_must_no_match(self, ctx):
        (pattern,) = parse_template("(sum)")
        tokens = toks("average hours")
        assert list(pattern.ends(tokens, 0, len(tokens), ctx)) == []

    def test_opt_yields_empty_and_prefixes(self, ctx):
        (pattern,) = parse_template("(all|the)*")
        tokens = toks("all the hours")
        assert list(pattern.ends(tokens, 0, len(tokens), ctx)) == [0, 1, 2]

    def test_opt_slack_skips_one_foreign_word(self, ctx):
        (pattern,) = parse_template("(the)*!")
        tokens = toks("the zzz the hours")
        ends = list(pattern.ends(tokens, 0, len(tokens), ctx))
        assert 3 in ends  # the + slack(zzz) + the

    def test_literal_pattern(self, ctx):
        pattern = LiteralPat(1)
        assert list(pattern.ends(toks("20 hours"), 0, 2, ctx)) == [1]
        assert list(pattern.ends(toks("I2 hours"), 0, 2, ctx)) == [1]
        assert list(pattern.ends(toks("hours 20"), 0, 2, ctx)) == []

    def test_value_pattern_multiword(self, ctx):
        pattern = ValuePat(1)
        tokens = toks("capitol hill baristas")
        assert 2 in list(pattern.ends(tokens, 0, 3, ctx))

    def test_column_pattern(self, ctx):
        pattern = ColumnPat(1)
        assert list(pattern.ends(toks("hours x"), 0, 2, ctx)) == [1]

    def test_column_pattern_letter_form(self, ctx):
        pattern = ColumnPat(1)
        tokens = toks("column h is big")
        assert 2 in list(pattern.ends(tokens, 0, 4, ctx))

    def test_span_pattern_all_suffixes(self, ctx):
        pattern = SpanPat(1)
        tokens = toks("a b c")
        assert list(pattern.ends(tokens, 0, 3, ctx)) == [1, 2, 3]


class TestAlign:
    def test_running_example(self, ctx):
        template = parse_template("sum (all|the)* %C1 %2")
        tokens = toks("sum the totalpay for the chef titles")
        alignments = align(template, tokens, ctx)
        assert alignments
        must, opt, col, span = alignments[0]
        assert must == (0, 1)
        assert opt == (1, 2)
        assert col == (2, 3)
        assert span == (3, 7)

    def test_alignment_covers_whole_fragment(self, ctx):
        template = parse_template("sum (the)* %C1")
        tokens = toks("sum the hours")
        for alignment in align(template, tokens, ctx):
            assert alignment[0][0] == 0
            assert alignment[-1][1] == len(tokens)
            for (l1, u1), (l2, u2) in zip(alignment, alignment[1:]):
                assert u1 == l2

    def test_no_alignment_when_words_left_over(self, ctx):
        template = parse_template("sum %C1")
        tokens = toks("sum the hours")  # "the" can't be tiled
        assert align(template, tokens, ctx) == []

    def test_multiple_alignments_possible(self, ctx):
        # %1 and %2 can split anywhere around "and"
        template = parse_template("%1 and %2")
        tokens = toks("a b and c d")
        assert len(align(template, tokens, ctx)) == 1  # single "and" split

    def test_alignment_cap(self, ctx):
        template = parse_template("%1 %2")
        tokens = toks("a b c d e f g h")
        assert len(align(template, tokens, ctx, cap=3)) == 3

    def test_quick_reject(self, ctx):
        template = parse_template("(sum|total) (the)* %C1")
        assert quick_reject(template, frozenset({"average", "hours"}))
        assert not quick_reject(template, frozenset({"sum", "hours"}))

    def test_quick_reject_needs_full_phrase(self, ctx):
        template = parse_template("(add up)")
        assert quick_reject(template, frozenset({"add"}))
        assert not quick_reject(template, frozenset({"add", "up"}))
