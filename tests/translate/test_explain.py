"""Tests for the ranking-explanation diagnostics."""

import pytest

from repro.dataset import build_sheet
from repro.translate import Translator, explain


@pytest.fixture(scope="module")
def translator():
    return Translator(build_sheet("payroll"))


@pytest.fixture(scope="module")
def candidates(translator):
    return translator.translate("sum the totalpay for the capitol hill baristas")


class TestExplanation:
    def test_score_decomposition_multiplies_back(self, translator, candidates):
        for candidate in candidates[:3]:
            report = explain(candidate, translator)
            assert report.final_score == pytest.approx(
                report.prod_score * report.cover_score * report.mix_score
            )
            assert report.final_score == pytest.approx(candidate.score)

    def test_coverage_lines_cover_every_token(self, translator, candidates):
        report = explain(candidates[0], translator)
        assert [l.word for l in report.coverage] == [
            "sum", "the", "totalpay", "for", "the", "capitol", "hill",
            "baristas",
        ]

    def test_top_candidate_ignores_nothing(self, translator, candidates):
        report = explain(candidates[0], translator)
        assert all(line.used for line in report.coverage)
        assert report.ignored_weight == 0.0

    def test_lower_candidate_shows_ignored_content(self, translator, candidates):
        report = explain(candidates[1], translator)
        ignored = [l for l in report.coverage if not l.used]
        assert ignored
        assert report.cover_score < 1.0

    def test_render_is_complete(self, translator, candidates):
        text = explain(candidates[0], translator).render()
        assert "ProdSc" in text and "CoverSc" in text and "MixSc" in text
        assert "derivation:" in text
        assert "Sum(totalpay" in text

    def test_tree_shows_children(self, translator, candidates):
        report = explain(candidates[0], translator)
        assert any("atom" in line for line in report.tree_lines)
        assert any("rule" in line for line in report.tree_lines)
