"""Unit tests for derivation histories and the §3.4 ranking scores."""

import pytest

from repro.dsl import ast
from repro.sheet import CellValue
from repro.translate.derivation import ATOM, RULE, SYNTH, Derivation


def atom(expr, positions, score=1.0, cols=()):
    return Derivation(
        expr=expr,
        used=frozenset(positions),
        used_cols=frozenset(cols),
        kind=ATOM,
        rule_score=score,
    )


def col(name="hours"):
    return ast.ColumnRef(name)


def lit(x):
    return ast.Lit(CellValue.number(x))


class TestStructure:
    def test_key_is_expr_and_used(self):
        a = atom(col(), [1])
        b = atom(col(), [1])
        assert a.key() == b.key()
        assert a.key() != atom(col(), [2]).key()

    def test_used_non_column(self):
        d = atom(col(), [1, 2], cols=[2])
        assert d.used_non_column == frozenset([1])

    def test_children_combines_both_lists(self):
        a, b = atom(col(), [0]), atom(lit(1), [1])
        d = Derivation(
            expr=ast.Compare(ast.RelOp.GT, col(), lit(1)),
            used=frozenset([0, 1]),
            kind=RULE,
            rule_score=0.8,
            rule_children=(a,),
            synth_children=(b,),
        )
        assert d.children == (a, b)


class TestProdScore:
    def test_atom_prod_is_rule_score(self):
        assert atom(col(), [0], score=0.9).prod_score == 0.9

    def test_atom_ranking_prod_is_zero(self):
        assert atom(col(), [0]).ranking_prod_score == 0.0

    def test_rule_node_averages_with_children(self):
        child = atom(col(), [1])
        d = Derivation(
            expr=ast.Reduce(ast.ReduceOp.SUM, col(), ast.GetTable(), ast.TrueF()),
            used=frozenset([0, 1]),
            kind=RULE,
            rule_score=0.8,
            rule_children=(child,),
        )
        # RScore = (0.8 + 1.0) / 2 = 0.9, no synth children
        assert d.node_score == pytest.approx(0.9)
        assert d.prod_score == pytest.approx(0.9)

    def test_synthesis_decays(self):
        filler = atom(lit(1), [1], score=0.8)
        receiver = Derivation(
            expr=ast.Compare(ast.RelOp.GT, col(), ast.Hole(1)),
            used=frozenset([0]),
            kind=ATOM,
            rule_score=0.55,
        )
        combined = Derivation(
            expr=ast.Compare(ast.RelOp.GT, col(), lit(1)),
            used=frozenset([0, 1]),
            kind=SYNTH,
            rule_score=receiver.rule_score,
            synth_children=(filler,),
        )
        # node = 0.55 * prod(filler) = 0.55 * 0.8
        assert combined.node_score == pytest.approx(0.55 * 0.8)

    def test_repeated_synthesis_drops_below_rules(self):
        leaf = atom(lit(1), [0], score=0.6)
        level1 = Derivation(
            expr=lit(2), used=frozenset([0, 1]), kind=SYNTH,
            rule_score=0.6, synth_children=(leaf,),
        )
        level2 = Derivation(
            expr=lit(3), used=frozenset([0, 1, 2]), kind=SYNTH,
            rule_score=0.6, synth_children=(level1,),
        )
        assert level2.prod_score < level1.prod_score < 0.6


class TestCoverScore:
    def test_full_coverage(self):
        d = atom(col(), [0, 1, 2])
        assert d.cover_score(3) == 1.0

    def test_one_ignored_word_costs_nothing_unweighted(self):
        d = atom(col(), [0, 1])
        assert d.cover_score(3) == 1.0

    def test_quadratic_penalty(self):
        d = atom(col(), [0])
        assert d.cover_score(4) == pytest.approx(1 / 9)

    def test_weighted_content_word(self):
        d = atom(col(), [0])
        weights = [1.0, 2.0]  # position 1 ignored, weight 2
        assert d.cover_score(weights) == pytest.approx(1 / 4)

    def test_weighted_noise_is_free(self):
        d = atom(col(), [0])
        weights = [1.0, 0.4]
        assert d.cover_score(weights) == 1.0


class TestMixScore:
    def _pair(self, used_a, used_b):
        a = atom(col("hours"), used_a)
        b = atom(col("othours"), used_b)
        return Derivation(
            expr=ast.Compare(ast.RelOp.GT, col("hours"), col("othours")),
            used=frozenset(used_a) | frozenset(used_b),
            kind=RULE,
            rule_score=0.8,
            rule_children=(a, b),
        )

    def test_disjoint_spans_do_not_mix(self):
        d = self._pair([0, 1], [3, 4])
        assert d.mix_score == 1.0

    def test_interleaved_spans_mix(self):
        d = self._pair([0, 3], [1, 4])  # spans [0,3] and [1,4] overlap
        assert d.mix_score == 0.0

    def test_atom_mix_is_one(self):
        assert atom(col(), [0]).mix_score == 1.0

    def test_single_child_cannot_mix(self):
        child = atom(col(), [2])
        d = Derivation(
            expr=ast.Not(ast.Compare(ast.RelOp.GT, col(), lit(0))),
            used=frozenset([0, 2]),
            kind=RULE,
            rule_score=0.8,
            rule_children=(child,),
        )
        assert d.mix_score == 1.0


class TestFinalScore:
    def test_full_ranking_multiplies_components(self):
        child = atom(col(), [1])
        d = Derivation(
            expr=ast.Reduce(ast.ReduceOp.SUM, col(), ast.GetTable(), ast.TrueF()),
            used=frozenset([0, 1]),
            kind=RULE,
            rule_score=0.8,
            rule_children=(child,),
        )
        full = d.score([1.0, 1.0, 2.0], full_ranking=True)
        assert full == pytest.approx(d.prod_score * (1 / 4) * 1.0)

    def test_prod_only_mode(self):
        child = atom(col(), [1])
        d = Derivation(
            expr=ast.Reduce(ast.ReduceOp.SUM, col(), ast.GetTable(), ast.TrueF()),
            used=frozenset([0, 1]),
            kind=RULE,
            rule_score=0.8,
            rule_children=(child,),
        )
        assert d.score(10, full_ranking=False) == d.prod_score
