"""Unit tests for the tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sheet import ValueType
from repro.translate.tokenizer import Token, tokenize, words_of


class TestBasics:
    def test_simple_sentence(self):
        tokens = tokenize("sum the hours")
        assert words_of(tokens) == ["sum", "the", "hours"]

    def test_lowercases(self):
        assert words_of(tokenize("SUM The Hours")) == ["sum", "the", "hours"]

    def test_strips_punctuation(self):
        assert words_of(tokenize("sum, the hours!")) == ["sum", "the", "hours"]

    def test_indices_are_sequential(self):
        tokens = tokenize("a b c d")
        assert [t.index for t in tokens] == [0, 1, 2, 3]

    def test_empty_sentence(self):
        assert tokenize("") == []
        assert tokenize("   ") == []

    def test_possessive_stripped(self):
        assert words_of(tokenize("each employee's payrate"))[1] == "employee"


class TestLiterals:
    def test_integer(self):
        token = tokenize("under 20")[1]
        assert token.literal is not None
        assert token.literal.payload == 20

    def test_currency(self):
        token = tokenize("over $1,250.50")[1]
        assert token.literal.type is ValueType.CURRENCY
        assert token.literal.payload == 1250.5

    def test_percent(self):
        token = tokenize("add 15%")[1]
        assert token.literal.payload == 0.15

    def test_word_number(self):
        token = tokenize("less than twenty")[2]
        assert token.literal is not None
        assert token.literal.payload == 20

    def test_decimal_not_split(self):
        tokens = tokenize("times 1.10")
        assert tokens[1].literal.payload == 1.1

    def test_plain_word_has_no_literal(self):
        assert tokenize("hours")[0].literal is None


class TestCellRefs:
    def test_cell_reference_detected(self):
        token = tokenize("divide I2 by I3")[1]
        assert token.is_cellref
        assert token.text == "i2"

    def test_number_is_not_cellref(self):
        assert not tokenize("20")[0].is_cellref

    def test_word_is_not_cellref(self):
        assert not tokenize("hours")[0].is_cellref


class TestSymbols:
    def test_comparison_symbols_split(self):
        assert words_of(tokenize("totalpay > 500")) == ["totalpay", ">", "500"]

    def test_attached_symbols_split(self):
        assert words_of(tokenize("totalpay>500")) == ["totalpay", ">", "500"]

    def test_parens_split(self):
        words = words_of(tokenize("(basepay + otpay) * 1.1"))
        assert words == ["(", "basepay", "+", "otpay", ")", "*", "1.1"]

    def test_symbol_flag(self):
        tokens = tokenize("a > b")
        assert tokens[1].is_symbol
        assert not tokens[0].is_symbol


class TestCorrectionState:
    def test_with_correction(self):
        token = tokenize("huors")[0]
        corrected = token.with_correction("hours")
        assert corrected.text == "hours"
        assert corrected.corrected_from == "huors"
        assert corrected.misspelled
        assert not token.misspelled

    def test_correction_drops_literal(self):
        token = Token(text="20", raw="20", index=0)
        assert token.with_correction("x").literal is None


class TestProperties:
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Zs")),
                   max_size=60))
    def test_never_raises(self, text):
        tokens = tokenize(text)
        for t in tokens:
            assert t.text == t.text.lower()
            assert t.text.strip()

    @given(st.lists(st.sampled_from(
        ["sum", "hours", "20", "$10", "where", "less"]), max_size=8))
    def test_token_count_matches_words(self, words):
        sentence = " ".join(words)
        assert len(tokenize(sentence)) == len(words)
