"""Tests for Excel formula fragments mixed into NL input (§3.3.1)."""

import pytest

from repro.dataset import build_sheet
from repro.dsl import ast
from repro.evalkit import canonicalize
from repro.sheet import CellValue
from repro.translate import Translator, parse_range
from repro.translate.context import SheetContext
from repro.translate.excel_input import formula_seeds, resolve_range_column
from repro.translate.tokenizer import tokenize


@pytest.fixture(scope="module")
def wb():
    return build_sheet("payroll")


@pytest.fixture(scope="module")
def ctx(wb):
    return SheetContext(wb)


class TestRangeParsing:
    def test_valid_range(self):
        start, end = parse_range("H2:H13")
        assert start.to_a1() == "H2"
        assert end.to_a1() == "H13"

    @pytest.mark.parametrize("bad", ["H2", "H2:", ":H13", "2:13", "H0:H9"])
    def test_invalid_ranges(self, bad):
        assert parse_range(bad) is None

    def test_resolves_single_column_range(self, ctx):
        start, end = parse_range("H2:H13")
        column = resolve_range_column(ctx, start, end)
        assert column == ast.ColumnRef("totalpay")

    def test_partial_range_still_resolves(self, ctx):
        start, end = parse_range("H3:H5")
        assert resolve_range_column(ctx, start, end) == ast.ColumnRef("totalpay")

    def test_multi_column_range_rejected(self, ctx):
        start, end = parse_range("G2:H13")
        assert resolve_range_column(ctx, start, end) is None

    def test_range_outside_tables_rejected(self, ctx):
        start, end = parse_range("Z2:Z13")
        assert resolve_range_column(ctx, start, end) is None


class TestFormulaSeeds:
    def _seeds(self, ctx, text):
        tokens = tokenize(text)
        return formula_seeds(ctx, tokens, 0, len(tokens))

    def test_average_seed(self, ctx):
        (seed,) = self._seeds(ctx, "AVERAGE(H2:H13)")
        assert seed.expr == ast.Reduce(
            ast.ReduceOp.AVG, ast.ColumnRef("totalpay"), ast.GetTable(),
            ast.TrueF(),
        )
        assert seed.used == frozenset([0, 1, 2, 3])

    def test_sum_min_max(self, ctx):
        for func, op in (("SUM", ast.ReduceOp.SUM), ("MIN", ast.ReduceOp.MIN),
                         ("MAX", ast.ReduceOp.MAX)):
            (seed,) = self._seeds(ctx, f"{func}(D2:D13)")
            assert seed.expr.op is op

    def test_count_seed(self, ctx):
        (seed,) = self._seeds(ctx, "COUNT(A2:A13)")
        assert isinstance(seed.expr, ast.Count)

    def test_unknown_function_ignored(self, ctx):
        assert self._seeds(ctx, "STDEV(H2:H13)") == []

    def test_non_formula_span_ignored(self, ctx):
        assert self._seeds(ctx, "sum the hours now") == []


class TestMixedInput:
    def test_paper_example_shape(self, wb):
        """'highlight rows with totalpay > AVERAGE(H2:H13)' — the §3.3.1
        motivating example (with AVERAGE standing in for MEDIAN, which has
        no DSL reduction)."""
        translator = Translator(wb)
        top = translator.translate(
            "highlight rows with totalpay > AVERAGE(H2:H13)"
        )[0].program
        expected = ast.MakeActive(ast.SelectRows(
            ast.GetTable(),
            ast.Compare(
                ast.RelOp.GT, ast.ColumnRef("totalpay"),
                ast.Reduce(ast.ReduceOp.AVG, ast.ColumnRef("totalpay"),
                           ast.GetTable(), ast.TrueF()),
            ),
        ))
        assert canonicalize(top, wb) == canonicalize(expected, wb)

    def test_formula_as_filter_threshold(self, wb):
        translator = Translator(wb)
        candidates = translator.translate(
            "count employees with hours over AVERAGE(D2:D13)"
        )
        expected = ast.Count(
            ast.GetTable(),
            ast.Compare(
                ast.RelOp.GT, ast.ColumnRef("hours"),
                ast.Reduce(ast.ReduceOp.AVG, ast.ColumnRef("hours"),
                           ast.GetTable(), ast.TrueF()),
            ),
        )
        programs = [canonicalize(c.program, wb) for c in candidates]
        assert canonicalize(expected, wb) in programs

    def test_no_retraining_needed(self, wb):
        """The paper's point: the formula parser plugs in without touching
        rules or synthesis — plain NL input is unaffected."""
        translator = Translator(wb)
        top = translator.translate("sum the hours")[0].program
        assert top == ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("hours"), ast.GetTable(),
            ast.TrueF(),
        )
