"""End-to-end tests for the full translation algorithm (Algo 1)."""

import pytest

from repro.dataset import build_sheet
from repro.dsl import ast
from repro.errors import TranslationError
from repro.evalkit import canonicalize
from repro.sheet import CellValue
from repro.translate import Translator, TranslatorConfig, ablation_config


@pytest.fixture(scope="module")
def payroll_translator():
    return Translator(build_sheet("payroll"))


@pytest.fixture(scope="module")
def countries_translator():
    return Translator(build_sheet("countries"))


def top(translator, text):
    return translator.translate(text)[0].program


def canon(translator, expr):
    return canonicalize(expr, translator.workbook)


def assert_top(translator, text, expected):
    got = top(translator, text)
    assert canon(translator, got) == canon(translator, expected), (
        f"{text!r} -> {got}"
    )


def eq(column, value):
    return ast.Compare(
        ast.RelOp.EQ, ast.ColumnRef(column), ast.Lit(CellValue.text(value))
    )


class TestConditionalReductions:
    def test_running_example(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("totalpay"), ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        assert_top(
            payroll_translator,
            "sum the totalpay for the capitol hill baristas",
            expected,
        )

    def test_keyword_style(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("hours"), ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        assert_top(payroll_translator, "sum hours capitol hill baristas", expected)

    def test_verbose_polite_style(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("hours"), ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        assert_top(
            payroll_translator,
            "computer please sum the hours for the capitol hill location baristas",
            expected,
        )

    def test_filter_first_via_synthesis(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("totalpay"), ast.GetTable(),
            ast.Compare(ast.RelOp.LT, ast.ColumnRef("hours"),
                        ast.Lit(CellValue.number(20))),
        )
        assert_top(
            payroll_translator,
            "for all hours less than 20 sum the totalpay",
            expected,
        )

    def test_unconditional_sum(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("hours"), ast.GetTable(), ast.TrueF()
        )
        assert_top(payroll_translator, "sum the hours", expected)

    def test_column_letter_reference(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("totalpay"), ast.GetTable(),
            ast.TrueF(),
        )
        assert_top(payroll_translator, "column H total", expected)

    def test_misspelled_description(self, payroll_translator):
        expected = ast.Reduce(
            ast.ReduceOp.AVG, ast.ColumnRef("hours"), ast.GetTable(),
            eq("location", "capitol hill"),
        )
        assert_top(
            payroll_translator, "averge the huors at capitol hill", expected
        )


class TestCountsAndNegation:
    def test_count_with_comparison(self, payroll_translator):
        expected = ast.Count(
            ast.GetTable(),
            ast.Compare(ast.RelOp.GT, ast.ColumnRef("othours"),
                        ast.Lit(CellValue.number(0))),
        )
        assert_top(
            payroll_translator,
            "how many employees have othours greater than 0",
            expected,
        )

    def test_count_europe_not_euro(self, countries_translator):
        expected = ast.Count(
            ast.GetTable(),
            ast.And(
                eq("continent", "europe"),
                ast.Not(eq("currency", "euro")),
            ),
        )
        assert_top(
            countries_translator,
            "how many countries are in europe but do not use the euro",
            expected,
        )

    def test_sum_not_in_europe(self, countries_translator):
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("gdp"), ast.GetTable(),
            ast.Not(eq("continent", "europe")),
        )
        assert_top(
            countries_translator,
            "sum the gdp for all countries that are not in europe",
            expected,
        )


class TestNestedReductions:
    def test_above_average_select(self, countries_translator):
        avg = ast.Reduce(
            ast.ReduceOp.AVG, ast.ColumnRef("gdppercapita"), ast.GetTable(),
            ast.TrueF(),
        )
        expected = ast.MakeActive(ast.SelectRows(
            ast.GetTable(),
            ast.Compare(ast.RelOp.GT, ast.ColumnRef("gdppercapita"), avg),
        ))
        assert_top(
            countries_translator,
            "which countries have a gdp per capita larger than the average",
            expected,
        )

    def test_argmax(self, countries_translator):
        mx = ast.Reduce(
            ast.ReduceOp.MAX, ast.ColumnRef("gdppercapita"), ast.GetTable(),
            ast.TrueF(),
        )
        expected = ast.MakeActive(ast.SelectRows(
            ast.GetTable(),
            ast.Compare(ast.RelOp.EQ, ast.ColumnRef("gdppercapita"), mx),
        ))
        assert_top(
            countries_translator,
            "which country has the largest gdp per capita",
            expected,
        )

    def test_plain_max_without_row_noun(self, countries_translator):
        expected = ast.Reduce(
            ast.ReduceOp.MAX, ast.ColumnRef("population"), ast.GetTable(),
            ast.TrueF(),
        )
        assert_top(
            countries_translator, "find the largest population", expected
        )


class TestArithmeticAndLookup:
    def test_vector_addition(self, payroll_translator):
        expected = ast.BinOp(
            ast.BinaryOp.ADD, ast.ColumnRef("hours"), ast.ColumnRef("othours")
        )
        assert_top(
            payroll_translator, "add the hours and the othours columns", expected
        )

    def test_scalar_lookup(self, payroll_translator):
        expected = ast.Lookup(
            ast.Lit(CellValue.text("chef")),
            ast.GetTable("PayRates"),
            ast.ColumnRef("title"),
            ast.ColumnRef("payrate", "PayRates"),
        )
        assert_top(payroll_translator, "lookup the payrate for chef", expected)

    def test_join_map(self, payroll_translator):
        join = ast.Lookup(
            ast.ColumnRef("title"),
            ast.GetTable("PayRates"),
            ast.ColumnRef("title"),
            ast.ColumnRef("payrate"),
        )
        expected = ast.BinOp(ast.BinaryOp.MULT, join, ast.ColumnRef("hours"))
        assert_top(
            payroll_translator,
            "for each employee lookup the payrate and multiply by hours",
            expected,
        )

    def test_cell_reference_arithmetic(self, payroll_translator):
        wb = payroll_translator.workbook
        wb.set_value("J2", CellValue.currency(100))
        wb.set_value("J3", CellValue.currency(400))
        expected = ast.BinOp(
            ast.BinaryOp.DIV, ast.CellRef("J2"), ast.CellRef("J3")
        )
        assert_top(payroll_translator, "divide J2 by J3", expected)

    def test_scaled_sum_in_top3(self, payroll_translator):
        """'basepay plus otpay times 1.10' is genuinely ambiguous; the
        intended (a+b)*1.1 reading must appear in the top 3."""
        expected = ast.BinOp(
            ast.BinaryOp.MULT,
            ast.BinOp(ast.BinaryOp.ADD, ast.ColumnRef("basepay"),
                      ast.ColumnRef("otpay")),
            ast.Lit(CellValue.number(1.1)),
        )
        programs = [
            canon(payroll_translator, c.program)
            for c in payroll_translator.translate("basepay plus otpay times 1.10")[:3]
        ]
        assert canon(payroll_translator, expected) in programs


class TestSelectionAndFormatting:
    def test_select_with_two_filters(self, payroll_translator):
        expected = ast.MakeActive(ast.SelectRows(
            ast.GetTable(),
            ast.And(
                eq("location", "queen anne"),
                ast.Compare(ast.RelOp.GT, ast.ColumnRef("hours"),
                            ast.Lit(CellValue.number(20))),
            ),
        ))
        assert_top(
            payroll_translator,
            "select rows with employees at queen anne with over 20 hours",
            expected,
        )

    def test_conditional_formatting(self, payroll_translator):
        from repro.sheet import FormatFn

        expected = ast.FormatCells(
            ast.FormatSpec((FormatFn.color("red"),)),
            ast.SelectRows(
                ast.GetTable(),
                ast.Compare(ast.RelOp.GT, ast.ColumnRef("othours"),
                            ast.Lit(CellValue.number(0))),
            ),
        )
        assert_top(
            payroll_translator,
            "get the rows with othours bigger than 0 and color them red",
            expected,
        )


class TestCandidateApi:
    def test_candidates_sorted_by_score(self, payroll_translator):
        candidates = payroll_translator.translate("sum the hours for the baristas")
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_candidates_are_complete_programs(self, payroll_translator):
        from repro.dsl.holes import is_complete

        for c in payroll_translator.translate("sum the hours"):
            assert is_complete(c.program)

    def test_candidate_helpers(self, payroll_translator):
        candidate = payroll_translator.translate("sum the hours")[0]
        assert candidate.excel(payroll_translator.workbook).startswith("=SUM")
        assert "sum up" in candidate.paraphrase()
        result = candidate.execute(payroll_translator.workbook, place=False)
        assert result.value.payload > 0

    def test_empty_description_rejected(self, payroll_translator):
        with pytest.raises(TranslationError):
            payroll_translator.translate("   ")

    def test_max_results_respected(self):
        tr = Translator(
            build_sheet("payroll"), config=TranslatorConfig(max_results=2)
        )
        assert len(tr.translate("sum the hours for the baristas")) <= 2


class TestAblationConfigs:
    def test_modes_resolve(self):
        for mode in ("rules_only", "synthesis_only", "combined_prod_only",
                     "complete", "no_cover", "no_mix"):
            cfg = ablation_config(mode)
            assert isinstance(cfg, TranslatorConfig)

    def test_unknown_mode(self):
        with pytest.raises(TranslationError):
            ablation_config("everything")

    def test_rules_only_misses_implicit_conjunction(self):
        """Implicit conjunction needs synthesis (the paper's motivating gap
        for combining the two algorithms)."""
        tr = Translator(
            build_sheet("payroll"), config=ablation_config("rules_only")
        )
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("hours"), ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        wb = tr.workbook
        got = [canonicalize(c.program, wb) for c in
               tr.translate("sum hours capitol hill baristas")]
        assert canonicalize(expected, wb) not in got

    def test_synthesis_only_recovers_it(self):
        tr = Translator(
            build_sheet("payroll"), config=ablation_config("synthesis_only")
        )
        expected = ast.Reduce(
            ast.ReduceOp.SUM, ast.ColumnRef("hours"), ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        wb = tr.workbook
        got = [canonicalize(c.program, wb) for c in
               tr.translate("sum hours capitol hill baristas")]
        assert canonicalize(expected, wb) in got


class TestSpellCorrection:
    def test_corrected_tokens_flagged(self, payroll_translator):
        tokens = payroll_translator.prepare_tokens("sum the huors")
        assert tokens[2].text == "hours"
        assert tokens[2].misspelled

    def test_plural_not_flagged(self, payroll_translator):
        tokens = payroll_translator.prepare_tokens("the baristas")
        assert not tokens[1].misspelled

    def test_joining_neighbors_not_corrected(self):
        tr = Translator(build_sheet("invoices"))
        tokens = tr.prepare_tokens("units times unit price")
        assert [t.text for t in tokens] == ["units", "times", "unit", "price"]


class TestRangeComparisons:
    def test_between(self, payroll_translator):
        top = payroll_translator.translate(
            "count employees with hours between 20 and 35"
        )[0]
        result = top.execute(payroll_translator.workbook, place=False)
        # strictly between: 30, 25, 22, 28, 33, 21 -> 6 employees
        assert result.value.payload == 6

    def test_at_most(self, payroll_translator):
        top = payroll_translator.translate(
            "count employees with hours at most 21"
        )[0]
        result = top.execute(payroll_translator.workbook, place=False)
        assert result.value.payload == 3  # 18, 16, 21

    def test_at_least(self, payroll_translator):
        top = payroll_translator.translate(
            "how many employees have hours of at least 36"
        )[0]
        result = top.execute(payroll_translator.workbook, place=False)
        assert result.value.payload == 3  # 40, 38, 36

    def test_before_after_dates(self):
        from repro.sheet import Table, ValueType, Workbook

        wb = Workbook()
        wb.add_table(Table.from_data(
            "Projects", ["project", "deadline"],
            [["a", "2014-03-01"], ["b", "2014-06-15"], ["c", "2014-09-30"]],
            types=[ValueType.TEXT, ValueType.DATE],
        ))
        wb.set_cursor("D2")
        translator = Translator(wb)
        top = translator.translate(
            "count projects with deadline before 2014-06-01"
        )[0]
        assert top.execute(wb, place=False).value.payload == 1
