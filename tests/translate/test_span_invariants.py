"""Property tests on translator-internal invariants (TMap spans)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataset import build_sheet
from repro.dsl.holes import is_complete
from repro.translate import Translator

_WORDS = st.sampled_from(
    "sum average count hours totalpay baristas capitol hill the for where"
    " less than 20 red and".split()
)


@pytest.fixture(scope="module")
def translator():
    return Translator(build_sheet("payroll"))


class TestSpanInvariants:
    @given(st.lists(_WORDS, min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_derivations_use_words_inside_their_span(self, translator, words):
        tokens = translator.prepare_tokens(" ".join(words))
        n = len(tokens)
        tmap = {}
        for width in range(1, n + 1):
            for i in range(0, n - width + 1):
                j = i + width
                tmap[(i, j)] = translator._translate_span(tokens, i, j, tmap)
                for d in tmap[(i, j)]:
                    assert all(i <= k < j for k in d.used), (
                        f"derivation {d.expr} at [{i},{j}) uses {sorted(d.used)}"
                    )

    @given(st.lists(_WORDS, min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_used_cols_subset_of_used(self, translator, words):
        tokens = translator.prepare_tokens(" ".join(words))
        n = len(tokens)
        tmap = {}
        for width in range(1, n + 1):
            for i in range(0, n - width + 1):
                j = i + width
                tmap[(i, j)] = translator._translate_span(tokens, i, j, tmap)
                for d in tmap[(i, j)]:
                    assert d.used_cols <= d.used

    @given(st.lists(_WORDS, min_size=2, max_size=6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_final_candidates_complete_and_valid(self, translator, words):
        for candidate in translator.translate(" ".join(words)):
            assert is_complete(candidate.program)
            assert translator.checker.valid_program(candidate.program)

    @given(st.lists(_WORDS, min_size=2, max_size=6))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_translation_is_deterministic(self, translator, words):
        text = " ".join(words)
        a = [c.program for c in translator.translate(text)]
        b = [c.program for c in translator.translate(text)]
        assert a == b
