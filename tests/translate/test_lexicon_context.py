"""Unit tests for the lexicon, spell corrector, and sheet context."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sheet import Color
from repro.translate.context import SheetContext
from repro.translate.lexicon import (
    SYNONYMS,
    SpellCorrector,
    concept_of,
    damerau_levenshtein,
    keyword_vocabulary,
)


class TestSynonyms:
    def test_concepts_cover_operators(self):
        for concept in ("sum", "avg", "min", "max", "count", "lt", "gt",
                        "eq", "not", "and", "or"):
            assert SYNONYMS[concept], concept

    def test_concept_of_multi(self):
        # "less" evokes both Lt and Sub
        assert set(concept_of("less")) >= {"lt", "sub"}

    def test_concept_of_unknown(self):
        assert concept_of("zebra") == []

    def test_keyword_vocabulary_is_alpha(self):
        assert all(w.isalpha() for w in keyword_vocabulary())


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("hours", "hours", 0),
            ("huors", "hours", 1),   # transposition
            ("hour", "hours", 1),    # insertion
            ("hoursx", "hours", 1),  # deletion
            ("haurs", "hours", 1),   # substitution
            ("abc", "xyz", 3),
        ],
    )
    def test_known_distances(self, a, b, d):
        assert damerau_levenshtein(a, b) == d

    def test_cap_short_circuits(self):
        assert damerau_levenshtein("a", "abcdefgh", cap=2) > 2

    @given(st.text(alphabet="abcde", max_size=8),
           st.text(alphabet="abcde", max_size=8))
    def test_symmetric(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(st.text(alphabet="abcde", max_size=8))
    def test_identity(self, a):
        assert damerau_levenshtein(a, a) == 0


class TestSpellCorrector:
    @pytest.fixture
    def corrector(self):
        return SpellCorrector(
            {"hours", "totalpay", "barista", "units", "its"},
            preferred={"hours", "totalpay", "barista", "units"},
        )

    def test_exact_member(self, corrector):
        c = corrector.correct("hours")
        assert c.word == "hours" and c.distance == 0

    def test_transposition(self, corrector):
        assert corrector.correct("huors").word == "hours"

    def test_short_words_not_corrected(self, corrector):
        assert corrector.correct("hrs") is None

    def test_non_alpha_not_corrected(self, corrector):
        assert corrector.correct("h0urs2") is None

    def test_far_words_not_corrected(self, corrector):
        assert corrector.correct("zzzzzz") is None

    def test_preferred_wins_tie(self, corrector):
        # "nits" is distance 1 from both "units" (preferred) and "its"
        assert corrector.correct("nits").word == "units"

    def test_contains(self, corrector):
        assert "hours" in corrector
        assert "huors" not in corrector


class TestSheetContext:
    @pytest.fixture
    def ctx(self, payroll):
        return SheetContext(payroll)

    def test_match_column_direct(self, ctx):
        matches = ctx.match_column(("hours",))
        assert matches[0].column == "hours"
        assert not matches[0].via_value

    def test_match_column_squashed_multiword(self, ctx):
        matches = ctx.match_column(("total", "pay"))
        assert matches and matches[0].column == "totalpay"

    def test_match_column_via_value(self, ctx):
        matches = ctx.match_column(("barista",))
        assert any(m.via_value and m.column == "title" for m in matches)

    def test_match_column_across_tables(self, ctx):
        matches = ctx.match_column(("payrate",))
        assert any(m.table == "PayRates" for m in matches)

    def test_match_column_empty_span(self, ctx):
        assert ctx.match_column(()) == []

    def test_column_by_letter(self, ctx):
        match = ctx.column_by_letter("H")
        assert match.column == "totalpay"

    def test_column_by_letter_out_of_range(self, ctx):
        assert ctx.column_by_letter("ZZ") is None
        assert ctx.column_by_letter("7") is None

    def test_match_value_single(self, ctx):
        matches = ctx.match_value(("chef",))
        assert {(m.table, m.column) for m in matches} == {
            ("Employees", "title"), ("PayRates", "title")
        }

    def test_match_value_multiword(self, ctx):
        matches = ctx.match_value(("capitol", "hill"))
        assert matches[0].value == "capitol hill"
        assert matches[0].column == "location"

    def test_match_value_plural(self, ctx):
        matches = ctx.match_value(("baristas",))
        assert matches and matches[0].value == "barista"

    def test_match_value_miss(self, ctx):
        assert ctx.match_value(("astronaut",)) == []

    def test_is_value_word(self, ctx):
        assert ctx.is_value_word("capitol")
        assert ctx.is_value_word("baristas")
        assert not ctx.is_value_word("sum")

    def test_is_column_word(self, ctx):
        assert ctx.is_column_word("hours")
        assert not ctx.is_column_word("capitol")

    def test_match_color(self):
        assert SheetContext.match_color("red") is Color.RED
        assert SheetContext.match_color("plaid") is None
        assert SheetContext.match_color("none") is None

    def test_corrector_covers_sheet_vocabulary(self, ctx):
        for word in ("totalpay", "capitol", "barista", "payrate"):
            assert word in ctx.corrector


class TestFuzzyColumns:
    """The §7 similarity-matching extension (opt-in)."""

    @pytest.fixture
    def fuzzy_ctx(self, payroll):
        return SheetContext(payroll, fuzzy_columns=True)

    def test_abbreviation_prefix_match(self, fuzzy_ctx):
        matches = fuzzy_ctx.match_column(("overtime", "hours"))
        assert any(m.column == "othours" for m in matches)

    def test_permuted_subset_match(self):
        from repro.dataset import build_sheet

        ctx = SheetContext(build_sheet("countries"), fuzzy_columns=True)
        matches = ctx.match_column(("per", "capita", "gdp"))
        assert any(m.column == "gdppercapita" for m in matches)

    def test_connective_word_dropped(self):
        from repro.dataset import build_sheet

        ctx = SheetContext(build_sheet("invoices"), fuzzy_columns=True)
        matches = ctx.match_column(("price", "per", "unit"))
        assert any(m.column == "unitprice" for m in matches)

    def test_disabled_by_default(self, payroll):
        default_ctx = SheetContext(payroll)
        assert not default_ctx.match_column(("overtime", "hours"))

    def test_exact_matches_unaffected(self, fuzzy_ctx):
        matches = fuzzy_ctx.match_column(("hours",))
        assert matches and matches[0].column == "hours"

    def test_no_false_positive_on_garbage(self, fuzzy_ctx):
        assert not fuzzy_ctx.match_column(("zz", "qq"))


class TestEditDistanceColumnJoin:
    """Typos inside squashed multi-word headers ("unit pprice")."""

    def test_typo_in_piece_still_joins(self):
        from repro.dataset import build_sheet

        ctx = SheetContext(build_sheet("invoices"))
        matches = ctx.match_column(("unit", "pprice"))
        assert matches and matches[0].column == "unitprice"

    def test_transposition_in_three_word_join(self):
        from repro.dataset import build_sheet

        ctx = SheetContext(build_sheet("countries"))
        matches = ctx.match_column(("gdp", "per", "captia"))
        assert matches and matches[0].column == "gdppercapita"

    def test_single_word_not_fuzzy_joined(self, payroll):
        ctx = SheetContext(payroll)
        # single tokens go through the spell corrector, not the join path
        assert not ctx.match_column(("totlpayx",))

    def test_short_joins_not_fuzzy(self, payroll):
        ctx = SheetContext(payroll)
        assert not ctx.match_column(("hx", "rs"))
