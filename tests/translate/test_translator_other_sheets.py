"""End-to-end translations on the inventory and invoices sheets.

The payroll and countries sheets carry most targeted tests; these pin the
remaining two domains, including vocabulary that only they exercise
(warehouses, suppliers, invoice statuses, product names).
"""

import pytest

from repro.dataset import build_sheet
from repro.dsl import ast
from repro.evalkit import canonicalize
from repro.sheet import CellValue
from repro.translate import Translator


@pytest.fixture(scope="module")
def inventory():
    return Translator(build_sheet("inventory"))


@pytest.fixture(scope="module")
def invoices():
    return Translator(build_sheet("invoices"))


def eq(column, value):
    return ast.Compare(
        ast.RelOp.EQ, ast.ColumnRef(column), ast.Lit(CellValue.text(value))
    )


def assert_top(translator, text, expected):
    got = translator.translate(text)[0].program
    wb = translator.workbook
    assert canonicalize(got, wb) == canonicalize(expected, wb), (
        f"{text!r} -> {got}"
    )


class TestInventory:
    def test_sum_by_category(self, inventory):
        assert_top(
            inventory,
            "sum the stockvalue for the coffee items",
            ast.Reduce(ast.ReduceOp.SUM, ast.ColumnRef("stockvalue"),
                       ast.GetTable(), eq("category", "coffee")),
        )

    def test_column_to_column_comparison(self, inventory):
        assert_top(
            inventory,
            "count the items where quantity is below reorder",
            ast.Count(
                ast.GetTable(),
                ast.Compare(ast.RelOp.LT, ast.ColumnRef("quantity"),
                            ast.ColumnRef("reorder")),
            ),
        )

    def test_disjunction(self, inventory):
        assert_top(
            inventory,
            "how many items are supplies or dairy",
            ast.Count(
                ast.GetTable(),
                ast.Or(eq("category", "supplies"), eq("category", "dairy")),
            ),
        )

    def test_multiword_supplier_value(self, inventory):
        assert_top(
            inventory,
            "average the unitprice for the leaf co items",
            ast.Reduce(ast.ReduceOp.AVG, ast.ColumnRef("unitprice"),
                       ast.GetTable(), eq("supplier", "leaf co")),
        )

    def test_warehouse_locative(self, inventory):
        assert_top(
            inventory,
            "sum the quantity for items in the south warehouse",
            ast.Reduce(ast.ReduceOp.SUM, ast.ColumnRef("quantity"),
                       ast.GetTable(), eq("warehouse", "south")),
        )

    def test_recompute_stock_value(self, inventory):
        assert_top(
            inventory,
            "quantity times unit price",
            ast.BinOp(ast.BinaryOp.MULT, ast.ColumnRef("quantity"),
                      ast.ColumnRef("unitprice")),
        )


class TestInvoices:
    def test_sum_unpaid(self, invoices):
        assert_top(
            invoices,
            "sum the total for the unpaid invoices",
            ast.Reduce(ast.ReduceOp.SUM, ast.ColumnRef("total"),
                       ast.GetTable(), eq("status", "unpaid")),
        )

    def test_count_overdue(self, invoices):
        assert_top(
            invoices,
            "how many invoices are overdue",
            ast.Count(ast.GetTable(), eq("status", "overdue")),
        )

    def test_two_filters(self, invoices):
        assert_top(
            invoices,
            "sum the total for the paid invoices in the east region",
            ast.Reduce(
                ast.ReduceOp.SUM, ast.ColumnRef("total"), ast.GetTable(),
                ast.And(eq("status", "paid"), eq("region", "east")),
            ),
        )

    def test_customer_filter(self, invoices):
        assert_top(
            invoices,
            "select the rows for contoso",
            ast.MakeActive(ast.SelectRows(ast.GetTable(),
                                          eq("customer", "contoso"))),
        )

    def test_numeric_and_value_filter(self, invoices):
        assert_top(
            invoices,
            "count the widget orders with more than 10 units",
            ast.Count(
                ast.GetTable(),
                ast.And(
                    eq("product", "widget"),
                    ast.Compare(ast.RelOp.GT, ast.ColumnRef("units"),
                                ast.Lit(CellValue.number(10))),
                ),
            ),
        )

    def test_multiword_customer(self, invoices):
        assert_top(
            invoices,
            "sum the total for adventure works",
            ast.Reduce(ast.ReduceOp.SUM, ast.ColumnRef("total"),
                       ast.GetTable(), eq("customer", "adventure works")),
        )
