"""Shared fixtures: the Fig. 1 payroll workbook in miniature."""

from __future__ import annotations

import pytest

from repro.sheet import CellAddress, CellValue, Table, ValueType, Workbook

PAYROLL_HEADER = [
    "name", "location", "title", "hours", "othours",
    "payrate", "otpayrate", "totalpay",
]
PAYROLL_TYPES = [
    ValueType.TEXT, ValueType.TEXT, ValueType.TEXT,
    ValueType.NUMBER, ValueType.NUMBER,
    ValueType.CURRENCY, ValueType.CURRENCY, ValueType.CURRENCY,
]
PAYROLL_ROWS = [
    ["alice", "capitol hill", "barista", 30, 2, 12, 18, 396],
    ["bob", "capitol hill", "chef", 40, 0, 20, 30, 800],
    ["carol", "queen anne", "barista", 25, 5, 12, 18, 390],
    ["dave", "queen anne", "cashier", 18, 0, 11, 16, 198],
    ["erin", "capitol hill", "barista", 35, 4, 12, 18, 492],
    ["frank", "downtown", "chef", 38, 6, 21, 31, 984],
]


def make_payroll() -> Workbook:
    wb = Workbook()
    wb.add_table(
        Table.from_data(
            "Employees", PAYROLL_HEADER, PAYROLL_ROWS, types=PAYROLL_TYPES
        )
    )
    rates = Table.from_data(
        "PayRates",
        ["title", "payrate"],
        [["barista", 12], ["chef", 20], ["cashier", 11]],
        types=[ValueType.TEXT, ValueType.CURRENCY],
    )
    wb.add_table(rates)
    wb.set_cursor(CellAddress.parse("J2"))
    return wb


@pytest.fixture
def payroll() -> Workbook:
    return make_payroll()


@pytest.fixture
def employees(payroll: Workbook) -> Table:
    return payroll.table("Employees")


def cv_text(s: str) -> CellValue:
    return CellValue.text(s)


def cv_num(x) -> CellValue:
    return CellValue.number(x)


def cv_cur(x) -> CellValue:
    return CellValue.currency(x)
