"""Tests for :mod:`repro.cache`."""
