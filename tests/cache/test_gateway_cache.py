"""The gateway-layer cache contract: front-end hits bypass admission
control, chaos probes bypass the cache, and breaker trips purge it."""

from __future__ import annotations

import pytest

from repro.serve import GatewayConfig, TranslationGateway

from ..conftest import make_payroll


@pytest.fixture
def gateway():
    gw = TranslationGateway(
        make_payroll(), GatewayConfig(workers=1, cache=True)
    )
    yield gw
    gw.close(drain=True)


def test_repeat_request_hits_the_front_end(gateway):
    first = gateway.translate("sum the hours")
    second = gateway.translate("sum the hours")
    assert first.ok and not first.cached
    assert second.ok and second.cached
    assert second.worker_id is None  # never reached the pool
    assert second.programs == first.programs
    assert second.top_formula == first.top_formula
    stats = gateway.stats()
    assert stats.cache_hits == 1
    assert stats.cache is not None and stats.cache.hits == 1


def test_hit_bypasses_admission_control(gateway):
    """A cached answer is served even when the deadline is already spent —
    the probe runs before the shed check, and a hit costs ~nothing."""
    gateway.translate("sum the hours")
    hit = gateway.translate("sum the hours", deadline=0.0)
    assert hit.ok and hit.cached
    # Uncached + spent deadline still sheds (the pre-cache behaviour).
    miss = gateway.translate("average the othours", deadline=0.0)
    assert miss.error_code == "shed_overload"


def test_normalised_phrasings_share_one_entry(gateway):
    gateway.translate("sum the hours")
    assert gateway.translate("  Sum   THE hours ").cached


def test_fault_armed_requests_bypass_the_cache(gateway):
    gateway.translate("sum the hours")
    probe = gateway.translate(
        "sum the hours", faults="ranking:delay:0.0"
    )
    assert probe.ok and not probe.cached
    # And a probe's own answer was not committed on a fresh sentence.
    gateway.translate("average the hours", faults="ranking:delay:0.0")
    repeat = gateway.translate("average the hours")
    assert not repeat.cached


def test_cache_off_by_default():
    gw = TranslationGateway(make_payroll(), GatewayConfig(workers=1))
    try:
        gw.translate("sum the hours")
        assert not gw.translate("sum the hours").cached
        assert gw.stats().cache is None
        assert gw.stats().cache_hits == 0
    finally:
        gw.close(drain=True)


def test_breaker_trip_purges_the_fingerprint():
    gw = TranslationGateway(
        make_payroll(),
        GatewayConfig(
            workers=1, cache=True, breaker_threshold=2, restart_backoff=0.01
        ),
    )
    try:
        gw.translate("sum the hours")
        assert gw.translate("sum the hours").cached
        for _ in range(2):
            crashed = gw.translate("sum the hours", faults="worker_crash:raise")
            assert crashed.error_code == "worker_crashed"
        stats = gw.stats()
        assert any(state == "open" for state in stats.breakers.values())
        assert stats.cache.size == 0
        assert stats.cache.invalidated >= 1
    finally:
        gw.close(drain=True)


def test_worker_side_service_memo(gateway):
    """Duplicates that race past the front end (submitted before the first
    completes) still hit the in-worker per-rung memo."""
    pendings = [gateway.submit("sum the othours") for _ in range(3)]
    results = [p.result(timeout=60.0) for p in pendings]
    assert all(r.ok for r in results)
    assert {tuple(r.programs) for r in results} == {
        tuple(results[0].programs)
    }
    # At least one duplicate was served from either cache layer.
    assert any(r.cached or r.service_cached for r in results[1:])


def test_degraded_results_are_not_committed():
    """An anytime/degraded answer must not be replayed for a healthy
    request: nothing is cached, the repeat recomputes."""
    gw = TranslationGateway(
        make_payroll(), GatewayConfig(workers=1, cache=True)
    )
    try:
        starved = gw.translate("sum the hours", deadline=0.003)
        repeat = gw.translate("sum the hours")
        if starved.ok and not starved.degraded and not starved.anytime:
            pytest.skip("machine fast enough that the run was clean")
        assert not repeat.cached
    finally:
        gw.close(drain=True)
