"""Property-based tests for the bounded LRU+TTL :class:`ResultCache`.

Hypothesis drives random operation sequences against the invariants that
the serving layers depend on: the bound is never exceeded, eviction is
exactly least-recently-used, TTL expiry is observable only as a miss,
invalidation removes *every* entry for a fingerprint, and concurrent
readers/writers never lose a committed entry.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheKey, ResultCache, normalise_sentence, options_signature

# -- strategies -------------------------------------------------------------

_sentences = st.text(
    alphabet="abc XY\t", min_size=0, max_size=12
)
_fingerprints = st.sampled_from(["fp0", "fp1", "fp2"])
_options = st.sampled_from(["optA", "optB"])

_keys = st.builds(CacheKey, _sentences, _fingerprints, _options)


def _make_key(i: int, fingerprint: str = "fp") -> CacheKey:
    return CacheKey(f"sentence {i}", fingerprint, "opts")


# -- construction ------------------------------------------------------------

def test_rejects_bad_capacity_and_ttl():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)
    with pytest.raises(ValueError):
        ResultCache(ttl=0.0)
    with pytest.raises(ValueError):
        ResultCache(ttl=-1.0)


# -- the bound ---------------------------------------------------------------

@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]), st.integers(0, 15)),
        max_size=60,
    ),
)
def test_never_exceeds_capacity(capacity, ops):
    cache = ResultCache(capacity=capacity)
    for op, i in ops:
        key = _make_key(i)
        if op == "put":
            cache.put(key, i)
        else:
            cache.get(key)
        assert len(cache) <= capacity
    stats = cache.stats()
    assert stats.size == len(cache) <= capacity


@given(
    capacity=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=1, max_value=20),
)
def test_distinct_puts_evict_exactly_the_overflow(capacity, n):
    cache = ResultCache(capacity=capacity)
    for i in range(n):
        cache.put(_make_key(i), i)
    stats = cache.stats()
    assert stats.size == min(n, capacity)
    assert stats.evictions == max(0, n - capacity)


# -- LRU order ---------------------------------------------------------------

@given(
    touched=st.lists(st.integers(0, 3), min_size=0, max_size=10),
)
def test_lru_eviction_order(touched):
    """Fill to capacity, replay a random access pattern, then overflow:
    the evicted keys must be exactly the least-recently-used ones."""
    capacity = 4
    cache = ResultCache(capacity=capacity)
    for i in range(capacity):
        cache.put(_make_key(i), i)
    recency = list(range(capacity))  # oldest first
    for i in touched:
        cache.get(_make_key(i))
        recency.remove(i)
        recency.append(i)
    # Overflow by two: the two oldest by our model must be gone.
    cache.put(_make_key(100), 100)
    cache.put(_make_key(101), 101)
    survivors = {key.sentence for key in cache.keys()}
    for i in recency[:2]:
        assert _make_key(i).sentence not in survivors
    for i in recency[2:]:
        assert _make_key(i).sentence in survivors


def test_put_refreshes_recency():
    cache = ResultCache(capacity=2)
    cache.put(_make_key(0), 0)
    cache.put(_make_key(1), 1)
    cache.put(_make_key(0), 42)  # re-put: key 0 becomes most recent
    cache.put(_make_key(2), 2)  # evicts key 1, not key 0
    assert cache.get(_make_key(0)) == 42
    assert cache.get(_make_key(1)) is None


# -- TTL ---------------------------------------------------------------------

@given(advance=st.floats(min_value=0.0, max_value=20.0))
def test_ttl_expiry_with_fake_clock(advance):
    now = [0.0]
    cache = ResultCache(capacity=8, ttl=5.0, clock=lambda: now[0])
    key = _make_key(0)
    cache.put(key, "payload")
    now[0] += advance
    value = cache.get(key)
    if advance < 5.0:
        assert value == "payload"
        assert cache.stats().stale_drops == 0
    else:
        assert value is None
        stats = cache.stats()
        assert stats.stale_drops == 1
        assert stats.size == 0  # expired entries are removed, not served


def test_put_refreshes_ttl():
    now = [0.0]
    cache = ResultCache(capacity=8, ttl=5.0, clock=lambda: now[0])
    key = _make_key(0)
    cache.put(key, "old")
    now[0] = 4.0
    cache.put(key, "new")  # fresh TTL from t=4
    now[0] = 8.0  # stale relative to the first put, fresh to the second
    assert cache.get(key) == "new"


# -- invalidation -------------------------------------------------------------

@given(
    entries=st.lists(
        st.tuples(_sentences, _fingerprints, _options),
        min_size=0,
        max_size=24,
    ),
    victim=_fingerprints,
)
def test_invalidate_removes_every_entry_for_a_fingerprint(entries, victim):
    cache = ResultCache(capacity=64)
    for sentence, fingerprint, options in entries:
        cache.put(CacheKey(sentence, fingerprint, options), sentence)
    expected_gone = {
        key for key in cache.keys() if key.fingerprint == victim
    }
    dropped = cache.invalidate(victim)
    assert dropped == len(expected_gone)
    remaining = cache.keys()
    assert all(key.fingerprint != victim for key in remaining)
    # Entries for other fingerprints are untouched.
    assert len(remaining) == len(set(remaining))
    for key in remaining:
        assert cache.get(key) is not None
    assert cache.stats().invalidated == dropped


def test_invalidate_unknown_fingerprint_is_a_noop():
    cache = ResultCache(capacity=4)
    cache.put(_make_key(0, "fpA"), 0)
    assert cache.invalidate("fp-not-there") == 0
    assert len(cache) == 1


def test_clear_empties_everything():
    cache = ResultCache(capacity=8)
    for i in range(5):
        cache.put(_make_key(i, f"fp{i % 2}"), i)
    assert cache.clear() == 5
    assert len(cache) == 0
    assert cache.invalidate("fp0") == 0  # index cleared too


# -- concurrency --------------------------------------------------------------

@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 2**16))
def test_concurrent_get_put_loses_no_committed_entry(seed):
    """8 threads hammer a shared cache; every key a thread committed and
    nobody could have evicted or invalidated must still be readable."""
    capacity = 10_000  # large: no evictions, so commits must all survive
    cache = ResultCache(capacity=capacity)
    n_threads, per_thread = 8, 50
    errors: list[str] = []
    barrier = threading.Barrier(n_threads)

    def worker(tid: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            key = _make_key(i, fingerprint=f"fp-{tid}")
            cache.put(key, (tid, i))
            got = cache.get(key)
            if got != (tid, i):
                errors.append(f"thread {tid} lost {key}")

    threads = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) == n_threads * per_thread
    stats = cache.stats()
    assert stats.puts == n_threads * per_thread
    assert stats.hits == n_threads * per_thread
    assert stats.evictions == 0
    # Every committed entry is still present and correct.
    for tid in range(n_threads):
        for i in range(per_thread):
            assert cache.get(_make_key(i, f"fp-{tid}")) == (tid, i)


def test_concurrent_invalidate_is_consistent():
    """Concurrent put/invalidate on one fingerprint: afterwards the cache
    holds either 0 entries or exactly the puts that landed after the
    invalidation — never a dangling index entry."""
    cache = ResultCache(capacity=1024)
    stop = threading.Event()

    def writer() -> None:
        i = 0
        while not stop.is_set():
            cache.put(_make_key(i % 20, "fp-shared"), i)
            i += 1

    def invalidator() -> None:
        while not stop.is_set():
            cache.invalidate("fp-shared")

    threads = [threading.Thread(target=writer) for _ in range(4)] + [
        threading.Thread(target=invalidator) for _ in range(2)
    ]
    for t in threads:
        t.start()
    import time

    time.sleep(0.2)
    stop.set()
    for t in threads:
        t.join()
    cache.invalidate("fp-shared")
    assert len(cache) == 0
    # The secondary index holds no orphans: re-invalidating finds nothing.
    assert cache.invalidate("fp-shared") == 0


# -- stats and misc -----------------------------------------------------------

def test_contains_does_not_touch_counters_or_recency():
    cache = ResultCache(capacity=2)
    cache.put(_make_key(0), 0)
    cache.put(_make_key(1), 1)
    assert _make_key(0) in cache
    cache.put(_make_key(2), 2)  # key 0 is still LRU -> evicted
    assert _make_key(0) not in cache
    stats = cache.stats()
    assert stats.hits == 0 and stats.misses == 0


def test_latency_accounting():
    cache = ResultCache()
    cache.observe_miss(0.10)
    cache.observe_miss(0.30)
    cache.put(_make_key(0), 0)
    cache.get(_make_key(0))
    cache.get(_make_key(1))  # miss
    cache.get(_make_key(2))  # miss
    cache.get(_make_key(0))
    cache.observe_hit(0.001)
    cache.observe_hit(0.001)
    stats = cache.stats()
    assert stats.hits == 2 and stats.misses == 2
    assert stats.avg_miss_seconds == pytest.approx(0.2)
    assert stats.avg_hit_seconds == pytest.approx(0.001)
    assert stats.speedup == pytest.approx(200.0)
    assert stats.hit_rate == pytest.approx(0.5)


def test_normalise_sentence():
    assert normalise_sentence("  Sum THE\t hours ") == "sum the hours"
    assert normalise_sentence("") == ""


def test_options_signature_is_stable_and_discriminating():
    from repro.translate import TranslatorConfig

    a = options_signature(TranslatorConfig(), 5)
    b = options_signature(TranslatorConfig(), 5)
    c = options_signature(TranslatorConfig(beam_size=7), 5)
    d = options_signature(TranslatorConfig(), 3)
    assert a == b
    assert len({a, c, d}) == 3
