"""The service-layer cache contract: hits are byte-identical, mutation
invalidates, and nothing nondeterministic is ever committed."""

from __future__ import annotations

from repro.cache import ResultCache
from repro.runtime import FaultSpec, FaultPlan, TranslationService
from repro.sheet import CellValue

from ..conftest import make_payroll


def _service(**kwargs) -> TranslationService:
    return TranslationService(make_payroll(), cache=ResultCache(), **kwargs)


def test_repeat_request_hits_and_is_identical():
    service = _service()
    first = service.translate("sum the hours")
    second = service.translate("sum the hours")
    assert not first.cached and second.cached
    assert second.attempts[-1].cached
    assert [(str(c.program), c.score) for c in first.candidates] == [
        (str(c.program), c.score) for c in second.candidates
    ]
    assert second.tier == first.tier
    assert not second.degraded and not second.anytime
    stats = service.cache.stats()
    assert stats.hits == 1 and stats.puts >= 1


def test_normalised_phrasings_share_one_entry():
    service = _service()
    service.translate("sum the hours")
    hit = service.translate("  SUM   the HOURS ")
    assert hit.cached


def test_uncached_service_unaffected():
    service = TranslationService(make_payroll())
    assert service.cache is None
    assert not service.translate("sum the hours").cached
    assert not service.translate("sum the hours").cached


def test_workbook_mutation_invalidates():
    service = _service()
    service.translate("sum the hours")
    assert service.translate("sum the hours").cached
    # Direct cell mutation, bypassing every Workbook mutator.
    service.workbook.table("Employees").cell(0, 3).value = CellValue.number(99)
    after = service.translate("sum the hours")
    assert not after.cached
    assert service.cache.stats().invalidated >= 1
    # The new state memoises independently.
    assert service.translate("sum the hours").cached


def test_clean_empty_result_is_cached():
    service = _service()
    first = service.translate("sum the nonexistentcolumn")
    second = service.translate("sum the nonexistentcolumn")
    assert first.ok and not first.candidates
    assert second.cached and not second.candidates


def test_fault_plan_bypasses_cache():
    plan = FaultPlan([FaultSpec(stage="ranking", mode="delay", delay=0.0)])
    service = TranslationService(
        make_payroll(), cache=ResultCache(), faults=plan
    )
    service.translate("sum the hours")
    repeat = service.translate("sum the hours")
    assert not repeat.cached
    stats = service.cache.stats()
    assert stats.puts == 0 and stats.lookups == 0


def test_exhausted_run_is_not_committed():
    """A deadline-starved (anytime/errored) run must never be memoised:
    its output depends on wall clock."""
    service = TranslationService(
        make_payroll(), cache=ResultCache(), deadline=0.0
    )
    starved = service.translate("sum the hours")
    assert starved.error_code is not None or starved.anytime
    assert service.cache.stats().puts == 0
    # Lifting the deadline computes and commits cleanly.
    service.deadline = None
    clean = service.translate("sum the hours")
    assert not clean.cached and clean.ok
    assert service.translate("sum the hours").cached


def test_different_configs_do_not_share_entries():
    from repro.translate import TranslatorConfig

    cache = ResultCache()
    wb = make_payroll()
    a = TranslationService(wb, cache=cache)
    b = TranslationService(
        wb, cache=cache, config=TranslatorConfig(beam_size=24)
    )
    a.translate("sum the hours")
    assert not b.translate("sum the hours").cached
