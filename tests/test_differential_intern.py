"""Differential harness: the hot path must never change an answer.

Runs the Table 2 test split through :class:`TranslationService` with the
DP optimisations on (interned ASTs, memoised type checking, seed indices)
and again with everything disabled via the ``REPRO_NO_INTERN=1`` escape
hatch, and asserts the rankings serialise to identical bytes — programs,
scores, tiers, error codes, and the emitted Excel formula.  A second
differential pushes the same batch through an optimised and a de-optimised
gateway (fresh worker pools re-read the env var on fork) and compares the
wire-level replies the same way.

``REPRO_DIFF_LIMIT`` caps the number of descriptions per differential
(evenly subsampled; default: the full test split, which is what the
acceptance bar requires).
"""

from __future__ import annotations

import os

import pytest

from repro.dataset import SHEET_ORDER, Corpus, build_sheet
from repro.dsl import ast
from repro.runtime import TranslationService
from repro.serve import GatewayConfig, TranslationGateway

pytestmark = pytest.mark.slow

_LIMIT = os.environ.get("REPRO_DIFF_LIMIT")


@pytest.fixture(scope="module")
def test_split():
    descriptions = Corpus.default().test
    if _LIMIT:
        n = int(_LIMIT)
        if 0 < n < len(descriptions):
            step = len(descriptions) / n
            descriptions = [descriptions[int(k * step)] for k in range(n)]
    return descriptions


def _serialise_service(result, workbook) -> bytes:
    """Everything observable about a ranking, as bytes — including the
    Excel emission for the top candidate (the user-visible artefact)."""
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [f"{c.program}\t{c.score!r}" for c in result.candidates]
    if result.top is not None:
        try:
            lines.append(f"excel={result.top.excel(workbook)}")
        except Exception:  # noqa: BLE001 - both modes must fail alike too
            lines.append("excel=<error>")
    return "\n".join(lines).encode()


def _serialise_gateway(result) -> bytes:
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [f"{program}\t{score!r}" for program, score in result.programs]
    lines.append(f"top_formula={result.top_formula}")
    return "\n".join(lines).encode()


def _run_service_split(test_split, workbooks) -> list[bytes]:
    services = {
        sheet_id: TranslationService(wb)
        for sheet_id, wb in workbooks.items()
    }
    return [
        _serialise_service(
            services[d.sheet_id].translate(d.text), workbooks[d.sheet_id]
        )
        for d in test_split
    ]


def test_service_hotpath_equals_legacy(test_split):
    """The full split with the hot path on vs the REPRO_NO_INTERN legacy
    paths: byte-identical rankings, description by description."""
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    was = ast.hotpath_enabled()
    try:
        ast.set_hotpath(True)
        optimised = _run_service_split(test_split, workbooks)
        ast.set_hotpath(False)
        legacy = _run_service_split(test_split, workbooks)
    finally:
        ast.set_hotpath(was)
    mismatches = [
        (d.sheet_id, d.text)
        for d, a, b in zip(test_split, optimised, legacy)
        if a != b
    ]
    assert not mismatches, (
        f"{len(mismatches)}/{len(test_split)} rankings changed under the "
        f"hot-path optimisations, e.g. {mismatches[:3]}"
    )


def test_gateway_hotpath_equals_legacy(test_split):
    """The same batch through an optimised and a REPRO_NO_INTERN=1 gateway
    must produce byte-identical wire-level replies.  Workers are forked
    after the env var is set and re-sync it in ``worker_main``."""
    sample = test_split[:: max(1, len(test_split) // 120)]
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}

    def run(no_intern: bool):
        old = os.environ.get("REPRO_NO_INTERN")
        os.environ["REPRO_NO_INTERN"] = "1" if no_intern else ""
        gateway = TranslationGateway(
            config=GatewayConfig(workers=2, queue_limit=1024)
        )
        try:
            pendings = [
                gateway.submit(d.text, workbooks[d.sheet_id]) for d in sample
            ]
            return [p.result(timeout=120.0) for p in pendings]
        finally:
            gateway.close(drain=True)
            if old is None:
                os.environ.pop("REPRO_NO_INTERN", None)
            else:
                os.environ["REPRO_NO_INTERN"] = old

    optimised = run(no_intern=False)
    legacy = run(no_intern=True)
    for d, a, b in zip(sample, optimised, legacy):
        assert _serialise_gateway(a) == _serialise_gateway(b), (
            d.sheet_id, d.text
        )
