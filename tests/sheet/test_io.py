"""Tests for CSV workbook I/O."""

import pytest

from repro.errors import SheetError
from repro.sheet import ValueType
from repro.sheet.io import (
    load_workbook,
    read_table_csv,
    save_workbook,
    write_table_csv,
)


@pytest.fixture
def sales_csv(tmp_path):
    path = tmp_path / "sales.csv"
    path.write_text(
        "rep,region,amount,units,active\n"
        "ann,west,$1200,10,true\n"
        "ben,east,$900,7,false\n"
        "cho,west,$450,3,true\n"
    )
    return path


class TestRead:
    def test_types_inferred(self, sales_csv):
        table = read_table_csv(sales_csv)
        assert table.name == "sales"
        assert table.column("amount").dtype is ValueType.CURRENCY
        assert table.column("units").dtype is ValueType.NUMBER
        assert table.column("region").dtype is ValueType.TEXT
        assert table.column("active").dtype is ValueType.BOOL

    def test_values_parsed(self, sales_csv):
        table = read_table_csv(sales_csv)
        assert table.cell(0, 2).value.payload == 1200
        assert table.cell(1, 3).value.payload == 7

    def test_mixed_currency_and_bare_numbers(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("price\n$10\n20\n")
        table = read_table_csv(path)
        assert table.column("price").dtype is ValueType.CURRENCY
        assert table.cell(1, 0).value.payload == 20

    def test_empty_cells_allowed(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,\n,x\n")
        table = read_table_csv(path)
        assert table.cell(0, 1).value.is_empty
        assert table.cell(1, 0).value.is_empty

    def test_dates(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("due\n2014-06-22\n2014-01-05\n")
        assert read_table_csv(path).column("due").dtype is ValueType.DATE

    def test_inconsistent_types_fall_back_to_text(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n1\nhello\n")
        table = read_table_csv(path)
        assert table.column("x").dtype is ValueType.TEXT

    def test_short_row_padded_with_empty_cells(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1\n2,x\n")
        table = read_table_csv(path)
        assert table.n_rows == 2
        assert table.cell(0, 1).value.is_empty
        assert table.cell(0, 2).value.is_empty
        assert not table.cell(1, 1).value.is_empty
        assert table.cell(1, 2).value.is_empty

    def test_overlong_row_rejected_with_code(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2,3\n")
        with pytest.raises(SheetError) as err:
            read_table_csv(path)
        assert err.value.code == "ragged_row"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(SheetError):
            read_table_csv(path)


class TestLoadWorkbook:
    def test_first_file_is_primary(self, sales_csv, tmp_path):
        other = tmp_path / "rates.csv"
        other.write_text("region,target\nwest,2\neast,1\n")
        workbook = load_workbook([sales_csv, other])
        assert workbook.default_table.name == "sales"
        assert workbook.has_table("rates")
        assert workbook.has_cursor

    def test_requires_files(self):
        with pytest.raises(SheetError):
            load_workbook([])

    def test_loaded_workbook_translates(self, sales_csv):
        from repro.translate import Translator

        workbook = load_workbook([sales_csv])
        candidates = Translator(workbook).translate(
            "sum the amount for the west region"
        )
        result = candidates[0].execute(workbook, place=False)
        assert result.value.payload == 1650


class TestRoundTrip:
    def test_write_then_read(self, sales_csv, tmp_path):
        table = read_table_csv(sales_csv)
        out = tmp_path / "out.csv"
        write_table_csv(table, out)
        again = read_table_csv(out)
        assert again.column_names == table.column_names
        assert again.n_rows == table.n_rows
        assert again.cell(0, 2).value.payload == 1200

    def test_save_workbook_writes_every_table(self, sales_csv, tmp_path):
        workbook = load_workbook([sales_csv])
        written = save_workbook(workbook, tmp_path / "dump")
        assert [p.name for p in written] == ["sales.csv"]
        assert written[0].exists()
