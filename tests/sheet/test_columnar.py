"""The columnar backend must be indistinguishable from the row walk.

Property tests (hypothesis) build arbitrary workbooks — unicode values,
whitespace, empties, plural-trap strings, values deliberately duplicated
across columns and tables — and assert that every columnar lookup equals
its row-backed counterpart in both ``REPRO_NO_COLUMNAR`` modes:

* the merged value lexicon (``Workbook.all_text_values``), including the
  slot-list *order* per value (it feeds seed and ranking order),
* ``SheetContext.match_value`` / ``match_column`` over arbitrary spans,
* the type checker's value-in-column content probe,
* the derived vocabulary artefacts (value words, max span width).

Deterministic unit tests cover the revision-memo behaviour and the
escape-hatch switch itself.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import build_sheet
from repro.sheet import (
    CellValue,
    Column,
    Table,
    ValueType,
    Workbook,
    columnar_enabled,
    set_columnar,
)
from repro.translate.context import SheetContext

# A pool with deliberate traps: empties-after-strip, plurals, multi-word
# values, case/space variants that normalise together, unicode.
_TRICKY = [
    "", " ", "  chef  ", "chef", "chefs", "capitol hill",
    "CAPITOL HILL", "a b c d e", "s", "ß", "Ünïcode véry", "0", "column",
]
_VALUES = st.one_of(st.sampled_from(_TRICKY), st.text(max_size=8))


@pytest.fixture(autouse=True)
def _restore_columnar():
    was = columnar_enabled()
    yield
    set_columnar(was)


@st.composite
def workbooks(draw):
    shared = draw(st.lists(_VALUES, min_size=1, max_size=5))
    wb = Workbook()
    for t in range(draw(st.integers(1, 3))):
        n_cols = draw(st.integers(1, 4))
        n_rows = draw(st.integers(0, 8))
        dtypes = [
            draw(st.sampled_from(
                [ValueType.TEXT, ValueType.TEXT, ValueType.NUMBER]
            ))
            for _ in range(n_cols)
        ]
        columns = [
            Column(f"col{t}{j}", dtypes[j]) for j in range(n_cols)
        ]
        rows = []
        for _ in range(n_rows):
            row = []
            for j in range(n_cols):
                if dtypes[j] is ValueType.TEXT:
                    choice = draw(st.one_of(
                        st.none(), st.sampled_from(shared), _VALUES
                    ))
                    row.append(
                        CellValue.empty() if choice is None
                        else CellValue.text(choice)
                    )
                else:
                    row.append(CellValue.number(draw(st.integers(0, 5))))
            rows.append(row)
        wb.add_table(Table(f"T{t}", columns, rows))
    return wb


def _spans(workbook) -> list[tuple[str, ...]]:
    """Probe spans: every value in the lexicon, its plural, its words, and
    some junk — enough to hit every match branch."""
    set_columnar(False)
    lexicon = workbook._all_text_values_rows()
    spans: list[tuple[str, ...]] = [("nosuchvalue",), ("chef", "hill")]
    for value in list(lexicon)[:40]:
        words = tuple(value.split())
        if words:
            spans.append(words)
            spans.append(words[:-1] + (words[-1] + "s",))
            spans.append((words[0],))
    return spans


@settings(max_examples=60, deadline=None)
@given(workbooks())
def test_lexicon_identical(wb):
    """all_text_values: same keys, same slots, same slot order."""
    set_columnar(False)
    legacy = wb.all_text_values()
    set_columnar(True)
    columnar = wb.all_text_values()
    assert {k: list(v) for k, v in columnar.items()} == legacy


@settings(max_examples=60, deadline=None)
@given(workbooks())
def test_context_matches_identical(wb):
    """match_value/match_column agree span-for-span, order included."""
    spans = _spans(wb)
    set_columnar(True)
    ctx_col = SheetContext(wb)
    set_columnar(False)
    ctx_row = SheetContext(wb)
    assert ctx_col._max_value_words == ctx_row._max_value_words
    assert set(ctx_col._value_words) == set(ctx_row._value_words)
    for span in spans:
        set_columnar(True)
        by_col = ctx_col.match_value(span)
        by_col_c = ctx_col.match_column(span)
        set_columnar(False)
        assert by_col == ctx_row.match_value(span), span
        assert by_col_c == ctx_row.match_column(span), span


@settings(max_examples=60, deadline=None)
@given(workbooks(), _VALUES)
def test_occurs_probe_identical(wb, raw):
    """The content-check probe: columnar occurs_in vs the row walk, for
    every (table, column) and both in-lexicon and arbitrary needles."""
    set_columnar(True)
    index = wb.columnar_index()
    needles = {raw.strip().lower()}
    needles.update(list(index.all_text_values())[:20])
    for table in wb.tables:
        key = table.name.strip().lower()
        occurs = table.distinct_text_values()
        for column in table.column_names:
            for needle in needles:
                assert index.occurs_in(key, needle, column) == (
                    column in occurs.get(needle, ())
                ), (key, column, needle)


def test_index_memoised_per_revision():
    wb = build_sheet("payroll")
    set_columnar(True)
    first = wb.columnar_index()
    assert wb.columnar_index() is first  # same revision -> same object
    wb.table("Employees").cell(0, 0).value = CellValue.text("zoe")
    second = wb.columnar_index()
    assert second is not first
    assert second.slots("zoe") == (("Employees", "name"),)
    assert second.slots("alice") == ()


def test_lexicon_memo_tracks_mutations():
    wb = build_sheet("payroll")
    set_columnar(True)
    assert "alice" in wb.all_text_values()
    wb.table("Employees").cell(0, 0).value = CellValue.text("zoe")
    fresh = wb.all_text_values()
    assert "zoe" in fresh and "alice" not in fresh


def test_escape_hatch_switch():
    set_columnar(False)
    assert not columnar_enabled()
    wb = build_sheet("payroll")
    assert wb.all_text_values()["chef"] == [
        ("Employees", "title"), ("PayRates", "title")
    ]
    set_columnar(True)
    assert columnar_enabled()
    assert wb.columnar_index().slots("chef") == (
        ("Employees", "title"), ("PayRates", "title")
    )


def test_occurs_in_unknown_table_and_column():
    wb = build_sheet("payroll")
    set_columnar(True)
    index = wb.columnar_index()
    assert not index.occurs_in("nope", "chef", "title")
    assert not index.occurs_in("employees", "chef", "nope")
    assert not index.occurs_in("employees", "nope", "title")
    assert index.occurs_in("employees", "chef", "title")
