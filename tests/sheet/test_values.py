"""Unit tests for typed cell values and literal parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sheet.values import (
    CellValue,
    ValueType,
    parse_literal,
    parse_word_number,
)


class TestConstruction:
    def test_number(self):
        v = CellValue.number(3)
        assert v.type is ValueType.NUMBER
        assert v.payload == 3

    def test_currency(self):
        v = CellValue.currency(10.5)
        assert v.type is ValueType.CURRENCY
        assert v.is_numeric

    def test_text(self):
        assert CellValue.text("chef").type is ValueType.TEXT

    def test_bool(self):
        assert CellValue.boolean(True).payload is True

    def test_date_requires_iso(self):
        assert CellValue.date("2014-06-22").payload == "2014-06-22"
        with pytest.raises(ValueError):
            CellValue.date("June 22")

    def test_empty(self):
        v = CellValue.empty()
        assert v.is_empty
        assert not v.is_numeric

    def test_payload_type_enforced(self):
        with pytest.raises(TypeError):
            CellValue(ValueType.NUMBER, "not a number")
        with pytest.raises(TypeError):
            CellValue(ValueType.TEXT, 5)

    def test_bool_is_not_number(self):
        with pytest.raises(TypeError):
            CellValue(ValueType.NUMBER, True)


class TestEquality:
    def test_numeric_cross_type_equality(self):
        # $10 equals the bare number 10 for filtering purposes.
        assert CellValue.currency(10).equals(CellValue.number(10))

    def test_text_case_insensitive(self):
        assert CellValue.text("Barista").equals(CellValue.text("barista"))

    def test_text_whitespace_insensitive(self):
        assert CellValue.text(" chef ").equals(CellValue.text("chef"))

    def test_text_vs_number_not_equal(self):
        assert not CellValue.text("10").equals(CellValue.number(10))

    def test_ordering_numeric(self):
        assert CellValue.number(5).less_than(CellValue.currency(6))
        assert not CellValue.number(7).less_than(CellValue.number(7))

    def test_ordering_dates(self):
        early = CellValue.date("2014-01-02")
        late = CellValue.date("2014-06-22")
        assert early.less_than(late)

    def test_ordering_text_raises(self):
        with pytest.raises(TypeError):
            CellValue.text("a").less_than(CellValue.text("b"))


class TestDisplay:
    def test_currency_integral(self):
        assert CellValue.currency(1250).display() == "$1,250"

    def test_currency_fractional(self):
        assert CellValue.currency(10.5).display() == "$10.50"

    def test_number_integral_float(self):
        assert CellValue.number(20.0).display() == "20"

    def test_bool(self):
        assert CellValue.boolean(False).display() == "FALSE"

    def test_empty(self):
        assert CellValue.empty().display() == ""


class TestParseLiteral:
    @pytest.mark.parametrize(
        "text,expected_type,expected_payload",
        [
            ("20", ValueType.NUMBER, 20),
            ("3.5", ValueType.NUMBER, 3.5),
            ("-4", ValueType.NUMBER, -4),
            ("1,000", ValueType.NUMBER, 1000),
            ("$10", ValueType.CURRENCY, 10),
            ("$1,250.50", ValueType.CURRENCY, 1250.5),
            ("15%", ValueType.NUMBER, 0.15),
            ("true", ValueType.BOOL, True),
            ("2014-06-22", ValueType.DATE, "2014-06-22"),
        ],
    )
    def test_parses(self, text, expected_type, expected_payload):
        v = parse_literal(text)
        assert v is not None
        assert v.type is expected_type
        assert v.payload == expected_payload

    @pytest.mark.parametrize("text", ["hello", "", "   ", "a1b", "$", "%"])
    def test_rejects_non_literals(self, text):
        assert parse_literal(text) is None

    def test_word_numbers(self):
        assert parse_word_number("twenty").payload == 20
        assert parse_word_number("ZERO").payload == 0
        assert parse_word_number("chef") is None

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_number_roundtrip(self, n):
        v = parse_literal(str(n))
        assert v is not None and v.payload == n

    @given(st.integers(min_value=0, max_value=10**6))
    def test_currency_roundtrip(self, n):
        v = parse_literal(f"${n}")
        assert v is not None
        assert v.type is ValueType.CURRENCY
        assert v.payload == n
