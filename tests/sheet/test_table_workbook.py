"""Unit tests for tables, formatting, and the workbook."""

import pytest

from repro.errors import SheetError, UnknownColumnError, UnknownTableError
from repro.sheet import (
    CellAddress,
    CellValue,
    Color,
    Column,
    FormatFn,
    Table,
    ValueType,
    Workbook,
)


class TestTableConstruction:
    def test_from_data_infers_types(self, employees):
        assert employees.column("hours").dtype is ValueType.NUMBER
        assert employees.column("totalpay").dtype is ValueType.CURRENCY
        assert employees.column("name").dtype is ValueType.TEXT

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SheetError):
            Table("T", [Column("a", ValueType.TEXT), Column("A", ValueType.TEXT)])

    def test_row_width_checked(self, employees):
        with pytest.raises(SheetError):
            employees.append_row([CellValue.text("x")])

    def test_column_type_enforced_on_append(self):
        t = Table("T", [Column("n", ValueType.NUMBER)])
        with pytest.raises(SheetError):
            t.append_row([CellValue.text("not a number")])

    def test_empty_cells_accepted_anywhere(self):
        t = Table("T", [Column("n", ValueType.NUMBER)])
        t.append_row([CellValue.empty()])
        assert t.n_rows == 1

    def test_mixed_inferred_types_rejected(self):
        with pytest.raises(ValueError):
            Table.from_data("T", ["a"], [[1], ["text"]])

    def test_retype_number_to_currency(self):
        t = Table.from_data("T", ["p"], [[10]], types=[ValueType.CURRENCY])
        assert t.column_values("p")[0].type is ValueType.CURRENCY


class TestTableAccess:
    def test_column_lookup_case_insensitive(self, employees):
        assert employees.column("TotalPay").name == "totalpay"

    def test_unknown_column(self, employees):
        with pytest.raises(UnknownColumnError):
            employees.column_index("salary")

    def test_column_values_with_row_filter(self, employees):
        values = employees.column_values("hours", rows=[0, 2])
        assert [v.payload for v in values] == [30, 25]

    def test_cell_out_of_range(self, employees):
        with pytest.raises(SheetError):
            employees.cell(99, 0)

    def test_distinct_text_values(self, employees):
        values = employees.distinct_text_values()
        assert "barista" in values
        assert values["barista"] == ["title"]
        assert "capitol hill" in values

    def test_render_contains_header_and_data(self, employees):
        text = employees.render()
        assert "totalpay" in text
        assert "capitol hill" in text


class TestAddressing:
    def test_data_cell_addresses_skip_header(self, employees):
        # Header at row 1 (A1..), first data row at row 2.
        assert employees.address_of(0, 0).to_a1() == "A2"
        assert employees.address_of(1, 7).to_a1() == "H3"

    def test_locate_roundtrip(self, employees):
        a = employees.address_of(3, 2)
        assert employees.locate(a) == (3, 2)

    def test_locate_outside_returns_none(self, employees):
        assert employees.locate(CellAddress.parse("Z99")) is None
        # The header row itself is not a data cell.
        assert employees.locate(CellAddress.parse("A1")) is None

    def test_column_at_letter_index(self, employees):
        assert employees.column_at_letter_index(7).name == "totalpay"
        assert employees.column_at_letter_index(99) is None


class TestFormatting:
    def test_apply_and_match(self, employees):
        cell = employees.cell(0, 7)
        cell.apply_formats([FormatFn.color(Color.RED), FormatFn.bold()])
        assert cell.matches_format([FormatFn.color(Color.RED)])
        assert cell.matches_format([FormatFn.bold()])
        assert not cell.matches_format([FormatFn.color(Color.BLUE)])

    def test_rows_matching_format(self, employees):
        employees.cell(1, 0).apply_formats([FormatFn.color(Color.RED)])
        employees.cell(4, 3).apply_formats([FormatFn.color(Color.RED)])
        assert employees.rows_matching_format([FormatFn.color(Color.RED)]) == [1, 4]

    def test_format_fn_validation(self):
        with pytest.raises(ValueError):
            FormatFn("blink", True)
        with pytest.raises(TypeError):
            FormatFn("bold", "yes")

    def test_color_from_name(self):
        assert Color.from_name("Red") is Color.RED
        with pytest.raises(ValueError):
            Color.from_name("mauve")


class TestWorkbook:
    def test_default_table_is_first(self, payroll):
        assert payroll.default_table.name == "Employees"

    def test_tables_do_not_overlap(self, payroll):
        emp = payroll.table("Employees")
        rates = payroll.table("PayRates")
        assert rates.origin.row > emp.origin.row + emp.n_rows

    def test_unknown_table(self, payroll):
        with pytest.raises(UnknownTableError):
            payroll.table("Nope")

    def test_duplicate_table_rejected(self, payroll):
        with pytest.raises(SheetError):
            payroll.add_table(Table("employees", [Column("x", ValueType.TEXT)]))

    def test_get_value_table_cell(self, payroll):
        # B2 = first data row, location column.
        assert payroll.get_value("B2").payload == "capitol hill"

    def test_scratch_cells(self, payroll):
        payroll.set_value("J2", CellValue.number(7))
        assert payroll.get_value("J2").payload == 7
        assert CellAddress.parse("J2") in payroll.scratch_addresses

    def test_set_value_into_table(self, payroll):
        payroll.set_value("D2", CellValue.number(99))
        assert payroll.table("Employees").cell(0, 3).value.payload == 99

    def test_place_scalar_at_cursor(self, payroll):
        payroll.set_cursor("J5")
        at = payroll.place_scalar(CellValue.number(1))
        assert at.to_a1() == "J5"
        assert payroll.get_value("J5").payload == 1

    def test_place_vector_descends(self, payroll):
        payroll.set_cursor("K1")
        addresses = payroll.place_vector(
            [CellValue.number(1), CellValue.number(2)]
        )
        assert [a.to_a1() for a in addresses] == ["K1", "K2"]

    def test_selection_and_selected_rows(self, payroll):
        emp = payroll.table("Employees")
        payroll.select_rows(emp, [1, 3])
        assert payroll.selected_row_indices(emp) == [1, 3]
        payroll.clear_selection()
        assert payroll.selected_row_indices(emp) == []

    def test_select_cells(self, payroll):
        emp = payroll.table("Employees")
        payroll.select_cells(emp, [(0, 7)])
        assert payroll.selected_row_indices(emp) == [0]

    def test_find_columns_prefers_default_table(self, payroll):
        hits = payroll.find_columns("payrate")
        assert hits[0][0].name == "Employees"
        assert len(hits) == 2  # Employees and PayRates both have payrate

    def test_all_text_values_merges_tables(self, payroll):
        values = payroll.all_text_values()
        assert ("Employees", "title") in values["chef"]
        assert ("PayRates", "title") in values["chef"]

    def test_cursor_required(self):
        wb = Workbook()
        with pytest.raises(SheetError):
            _ = wb.cursor
