"""Unit tests for A1 addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.sheet.address import (
    CellAddress,
    column_index_to_letter,
    column_letter_to_index,
    is_cell_reference,
)


class TestColumnLetters:
    @pytest.mark.parametrize(
        "letters,index",
        [("A", 0), ("B", 1), ("Z", 25), ("AA", 26), ("AZ", 51), ("BA", 52)],
    )
    def test_known_pairs(self, letters, index):
        assert column_letter_to_index(letters) == index
        assert column_index_to_letter(index) == letters

    def test_lowercase_accepted(self):
        assert column_letter_to_index("h") == 7

    def test_bad_letters(self):
        with pytest.raises(AddressError):
            column_letter_to_index("A1")
        with pytest.raises(AddressError):
            column_letter_to_index("")

    def test_negative_index(self):
        with pytest.raises(AddressError):
            column_index_to_letter(-1)

    @given(st.integers(min_value=0, max_value=5000))
    def test_roundtrip(self, index):
        assert column_letter_to_index(column_index_to_letter(index)) == index


class TestCellAddress:
    def test_parse(self):
        a = CellAddress.parse("I2")
        assert (a.col, a.row) == (8, 1)

    def test_to_a1(self):
        assert CellAddress(7, 13).to_a1() == "H14"

    def test_parse_rejects_garbage(self):
        for bad in ["", "I", "2", "I0", "1I", "I-2"]:
            with pytest.raises(AddressError):
                CellAddress.parse(bad)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(AddressError):
            CellAddress(-1, 0)

    def test_ordering_is_total(self):
        assert CellAddress(0, 0) < CellAddress(0, 1) < CellAddress(1, 0)

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=1000),
    )
    def test_roundtrip(self, col, row):
        a = CellAddress(col, row)
        assert CellAddress.parse(a.to_a1()) == a


class TestIsCellReference:
    @pytest.mark.parametrize("token", ["D2", "I2", "AA10", "h14"])
    def test_accepts(self, token):
        assert is_cell_reference(token)

    @pytest.mark.parametrize("token", ["hours", "20", "D0", "2D", ""])
    def test_rejects(self, token):
        assert not is_cell_reference(token)
