"""Unit tests for the mini Flash Fill learner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PbeError
from repro.pbe import fill_column, learn
from repro.sheet import Table, ValueType


class TestTokenPrograms:
    def test_first_author(self):
        program = learn([("harris, gulwani", "harris")])
        assert program.apply("le, gulwani, su") == "le"
        assert program.apply("gulwani, marron") == "gulwani"

    def test_last_token(self):
        program = learn([
            ("a, b, c", "c"),
            ("x, y", "y"),
        ])
        assert program.apply("p, q, r, s") == "s"

    def test_single_token_input(self):
        program = learn([("harris, gulwani", "harris")])
        assert program.apply("solo") == "solo"

    def test_domain_from_email_like(self):
        program = learn([
            ("alice/example", "example"),
            ("bob/test", "test"),
        ])
        assert program.apply("carol/acme") == "acme"

    def test_case_transform(self):
        program = learn([
            ("john smith", "JOHN"),
            ("mary jones", "MARY"),
        ])
        assert program.apply("ada lovelace") == "ADA"


class TestSubstringPrograms:
    def test_prefix(self):
        program = learn([
            ("inv-001", "inv"),
            ("inv-002", "inv"),
        ])
        assert program.apply("inv-999") == "inv"

    def test_fixed_slice(self):
        program = learn([
            ("abcdef", "cd"),
            ("qrstuv", "st"),
        ])
        assert program.apply("123456") == "34"


class TestConcatPrograms:
    def test_constant_suffix(self):
        program = learn([
            ("harris, gulwani", "harris!"),
            ("le, gulwani", "le!"),
        ])
        assert program.apply("a, b") == "a!"

    def test_constant_prefix(self):
        program = learn([
            ("smith, j", "dr smith"),
            ("jones, m", "dr jones"),
        ])
        assert program.apply("brown, k") == "dr brown"


class TestFailureModes:
    def test_no_examples(self):
        with pytest.raises(PbeError):
            learn([])

    def test_inconsistent_examples(self):
        with pytest.raises(PbeError):
            learn([("a, b", "a"), ("c, d", "x")])

    def test_program_undefined_on_input(self):
        program = learn([("a, b, c", "c")])  # third token (or last)
        # "describe" should exist for UI purposes
        assert program.describe()


class TestFillColumn:
    def _papers(self):
        return Table.from_data(
            "Papers",
            ["title", "authors"],
            [
                ["p1", "harris, gulwani"],
                ["p2", "gulwani, marron"],
                ["p3", "le, gulwani, su"],
            ],
        )

    def test_fills_whole_column(self):
        table = self._papers()
        fill_column(table, "authors", "firstauthor",
                    [("harris, gulwani", "harris")])
        values = [v.payload for v in table.column_values("firstauthor")]
        assert values == ["harris", "gulwani", "le"]
        assert table.column("firstauthor").dtype is ValueType.TEXT

    def test_duplicate_column_rejected(self):
        table = self._papers()
        with pytest.raises(PbeError):
            fill_column(table, "authors", "title", [("a, b", "a")])

    def test_new_column_usable_by_translator(self):
        from repro.sheet import Workbook
        from repro.translate import Translator

        table = self._papers()
        fill_column(table, "authors", "firstauthor",
                    [("harris, gulwani", "harris")])
        workbook = Workbook()
        workbook.add_table(table)
        workbook.set_cursor("E2")
        candidates = Translator(workbook).translate(
            "how many rows have a firstauthor of gulwani"
        )
        result = candidates[0].execute(workbook, place=False)
        assert result.value.payload == 1


class TestProperties:
    @given(st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=6),
        min_size=2, max_size=5,
    ))
    def test_first_token_always_learnable(self, tokens):
        inputs = [", ".join(tokens)] * 2
        program = learn([(inputs[0], tokens[0])])
        assert program.apply(inputs[1]) == tokens[0]
