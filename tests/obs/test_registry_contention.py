"""Registry and telemetry under thread contention.

The gateway observes requests from its dispatcher threads while worker
deltas fold in from the serve loop and ``/metrics``, ``/slo`` render
from the HTTP loop — all against one registry.  These tests hammer that
combination from 16 threads and assert nothing is lost, torn, or
deadlocked.
"""

from __future__ import annotations

import threading

from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    DeltaTracker,
    TelemetryHub,
    decode_state,
    encode_state,
)

THREADS = 16
PER_THREAD = 500


def run_all(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "worker deadlocked"


def test_counter_and_windowed_counter_under_contention():
    registry = MetricsRegistry()
    plain = registry.counter("plain_total")
    windowed = registry.windowed_counter("windowed_total")

    def worker():
        for i in range(PER_THREAD):
            plain.inc(code="ok")
            windowed.inc(code="ok")

    run_all([worker] * THREADS)
    expected = THREADS * PER_THREAD
    assert plain.value(code="ok") == expected
    assert windowed.value(code="ok") == expected
    assert windowed.window_sum(3600.0, code="ok") == expected


def test_windowed_histogram_under_contention():
    registry = MetricsRegistry()
    histogram = registry.windowed_histogram(
        "seconds", buckets=(0.1, 1.0), interval=10.0, horizon=600.0
    )

    def worker(seed):
        def run():
            for i in range(PER_THREAD):
                histogram.observe(
                    0.05 if (seed + i) % 2 else 0.5,
                    exemplar=f"t-{seed}-{i}",
                    code="ok",
                )
        return run

    run_all([worker(s) for s in range(THREADS)])
    expected = THREADS * PER_THREAD
    assert histogram.count(code="ok") == expected
    window = histogram.window(600.0, code="ok")
    assert window.count == expected
    assert sum(window.buckets) == expected


def test_snapshot_during_delta_fold_race():
    """Readers rendering/exporting while writers observe and a folder
    replays deltas: every render must parse, and the final fold total
    must be exact."""
    source = MetricsRegistry()
    tracker = DeltaTracker(source)
    target = MetricsRegistry()
    hub = TelemetryHub(metrics=target, scope="gateway")
    stop = threading.Event()
    blobs: list[bytes] = []
    lock = threading.Lock()

    def producer():
        for i in range(PER_THREAD):
            source.counter("worker_requests_total").inc(worker="0", code="ok")
            source.histogram("worker_seconds", buckets=(0.1, 1.0)).observe(
                0.05, worker="0"
            )
            if i % 10 == 0:
                with lock:
                    blobs.append(encode_state(tracker.delta()))
        with lock:
            blobs.append(encode_state(tracker.delta()))

    def folder():
        seen = 0
        while not stop.is_set() or seen < len(blobs):
            with lock:
                pending = blobs[seen:]
                seen = len(blobs)
            for blob in pending:
                assert hub.fold(blob)

    def reader():
        while not stop.is_set():
            target.render()
            state = target.export_state()
            # A torn histogram would fail the codec's invariant check.
            decode_state(encode_state(state))
            hub.slo_report()

    fold_thread = threading.Thread(target=folder)
    read_threads = [threading.Thread(target=reader) for _ in range(4)]
    produce_threads = [threading.Thread(target=producer) for _ in range(4)]
    fold_thread.start()
    for t in read_threads + produce_threads:
        t.start()
    for t in produce_threads:
        t.join(30)
    stop.set()
    fold_thread.join(30)
    for t in read_threads:
        t.join(30)
    assert not fold_thread.is_alive()

    folded = target.counter("worker_requests_total")
    assert folded.value(worker="0", code="ok") == 4 * PER_THREAD
    histogram = target.histogram("worker_seconds", buckets=(0.1, 1.0))
    assert histogram.count(worker="0") == 4 * PER_THREAD


def test_hub_observe_under_contention():
    class Result:
        ok = True
        error_code = None
        tier = "full"
        total_seconds = 0.01
        degraded = anytime = cached = False
        elapsed = 0.01
        queue_seconds = 0.0
        worker_id = 0
        fingerprint = "f" * 12

    clock = ManualClock(start=0.0, tick=0.0001)
    hub = TelemetryHub(
        metrics=MetricsRegistry(clock=clock), scope="gateway"
    )

    def worker(seed):
        def run():
            for i in range(PER_THREAD):
                hub.observe(Result(), trace_id=f"t-{seed}-{i}")
        return run

    run_all([worker(s) for s in range(THREADS)])
    expected = THREADS * PER_THREAD
    counter = hub.metrics.counter("telemetry_requests_total")
    assert counter.value(scope="gateway", code="ok") == expected
    report = hub.slo_report()
    availability = next(
        s for s in report["slos"] if s["name"] == "availability"
    )
    assert availability["windows"]["6h"]["good"] == expected
