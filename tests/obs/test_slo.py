"""The SLO engine: classification, budgets, multi-window burn alerts."""

from __future__ import annotations

import pytest

from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SloEngine, SloSpec
from repro.obs.telemetry.slo import default_slos


def make_engine(specs, *, start=0.0):
    clock = ManualClock(start=start)
    registry = MetricsRegistry(clock=clock)
    engine = SloEngine(specs, metrics=registry, clock=clock, scope="test")
    return engine, clock


def slo_named(report, name):
    return next(s for s in report["slos"] if s["name"] == name)


def alert_named(slo, rule):
    return next(a for a in slo["alerts"] if a["rule"] == rule)


# -- spec validation and classification ----------------------------------------------


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        SloSpec("x", "throughput", 0.99)


def test_spec_rejects_degenerate_objective():
    with pytest.raises(ValueError):
        SloSpec("x", "availability", 1.0)


def test_latency_spec_needs_threshold():
    with pytest.raises(ValueError):
        SloSpec("x", "latency", 0.95)


def test_availability_classification():
    spec = SloSpec("a", "availability", 0.99)
    good = spec.classify(True, None, "full", 0.1, False)
    bad = spec.classify(False, "worker_crashed", None, 0.1, False)
    input_err = spec.classify(False, "translation_error", None, 0.1, False)
    neutral = spec.classify(False, "cancelled", None, 0.1, False)
    assert (good, bad, input_err, neutral) == (True, False, None, None)


def test_latency_classification_scopes_to_tier():
    spec = SloSpec("l", "latency", 0.95, threshold=0.2, tier="full")
    assert spec.classify(True, None, "full", 0.1, False) is True
    assert spec.classify(True, None, "full", 0.5, False) is False
    assert spec.classify(True, None, "reduced", 0.5, False) is None
    assert spec.classify(False, "worker_timeout", "full", 0.5, False) is None


def test_shed_rate_counts_every_request():
    spec = SloSpec("s", "shed_rate", 0.98)
    assert spec.classify(True, None, "full", 0.1, False) is True
    assert spec.classify(False, "shed_overload", None, 0.0, True) is False


def test_default_slos_cover_the_ladder():
    specs = default_slos(0.4)
    by_name = {s.name: s for s in specs}
    assert by_name["latency_full"].tier == "full"
    assert by_name["latency_full"].threshold == pytest.approx(0.4)
    assert by_name["latency_reduced"].threshold == pytest.approx(0.2)
    assert by_name["availability"].objective == pytest.approx(0.999)


def test_engine_rejects_duplicate_names():
    with pytest.raises(ValueError):
        SloEngine([
            SloSpec("a", "availability", 0.99),
            SloSpec("a", "shed_rate", 0.98),
        ])


# -- burn-rate alerting --------------------------------------------------------------


def test_steady_good_traffic_is_healthy():
    engine, clock = make_engine([SloSpec("a", "availability", 0.99)])
    for _ in range(600):
        engine.record(ok=True)
        clock.advance(1.0)
    report = engine.report()
    assert report["healthy"] is True
    slo = slo_named(report, "a")
    assert all(not a["fired"] for a in slo["alerts"])
    assert slo["windows"]["5m"]["error_rate"] == 0.0


def test_fault_storm_trips_fast_burn_but_not_slow():
    """A 10-minute total outage after 6 quiet hours: the fast pair
    (5 m and 1 h) burns far past 14.4x, while the 6 h window has
    digested enough good traffic to keep the slow pair green."""
    engine, clock = make_engine([SloSpec("a", "availability", 0.99)])
    # Six hours of healthy traffic at 1 rps.
    for _ in range(21600):
        engine.record(ok=True)
        clock.advance(1.0)
    # Ten minutes of pure worker crashes at 1 rps.
    for _ in range(600):
        engine.record(ok=False, error_code="worker_crashed")
        clock.advance(1.0)
    report = engine.report()
    slo = slo_named(report, "a")
    fast = alert_named(slo, "fast")
    slow = alert_named(slo, "slow")
    assert fast["fired"] is True
    assert fast["short_burn_rate"] > 14.4  # 5m window: 100% errors
    assert fast["long_burn_rate"] > 14.4  # 1h window: 600/3600 errors
    # 6h window: 600 bad over ~21600 events -> burn ~2.8, under 6.
    assert slow["fired"] is False
    assert slow["long_burn_rate"] < 6.0
    assert report["healthy"] is False


def test_burn_requires_both_windows():
    """A blip that saturates the short window alone never pages."""
    engine, clock = make_engine([SloSpec("a", "availability", 0.99)])
    # One hour of good traffic, then one minute of failures.
    for _ in range(3600):
        engine.record(ok=True)
        clock.advance(1.0)
    for _ in range(60):
        engine.record(ok=False, error_code="worker_crashed")
        clock.advance(1.0)
    slo = slo_named(engine.report(), "a")
    fast = alert_named(slo, "fast")
    # Short window burns hot, long window hasn't crossed the bar.
    assert fast["short_burn_rate"] > 14.4
    assert fast["long_burn_rate"] < 14.4
    assert fast["fired"] is False


def test_input_errors_cost_no_budget():
    engine, clock = make_engine([SloSpec("a", "availability", 0.99)])
    for _ in range(100):
        engine.record(ok=False, error_code="translation_error")
        clock.advance(1.0)
    slo = slo_named(engine.report(), "a")
    assert slo["windows"]["5m"]["total"] == 0


def test_budget_accounting():
    engine, clock = make_engine([SloSpec("a", "availability", 0.99)])
    for i in range(1000):
        engine.record(ok=i % 100 != 0)  # exactly 1% bad
        clock.advance(1.0)
    slo = slo_named(engine.report(), "a")
    assert slo["budget_consumed"] == pytest.approx(1.0)
    assert slo["budget_remaining"] == pytest.approx(0.0)


def test_report_shape_is_json_safe():
    import json

    engine, clock = make_engine(default_slos())
    engine.record(ok=True, tier="full", seconds=0.1)
    engine.record(ok=False, error_code="worker_crashed", seconds=0.2)
    engine.record(ok=False, error_code="shed_overload", shed=True)
    report = engine.report()
    json.dumps(report)  # must not raise
    assert {s["name"] for s in report["slos"]} == {
        "availability", "latency_full", "latency_reduced", "shed_rate",
    }
    for slo in report["slos"]:
        assert set(slo["windows"]) == {"5m", "1h", "6h"}
        assert [a["rule"] for a in slo["alerts"]] == ["fast", "slow"]
