"""Federation: delta cursors, the strict wire codec, merge and fold."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryCodecError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    DeltaTracker,
    TELEMETRY_WIRE_VERSION,
    decode_state,
    encode_state,
    fold_state,
    merge_states,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def _seed(registry):
    registry.counter("requests_total").inc(3, code="ok")
    registry.gauge("depth").set(7)
    h = registry.histogram("seconds", buckets=(0.1, 1.0))
    h.observe(0.05, exemplar="t-1")
    h.observe(0.5)
    return registry


# -- delta tracker -------------------------------------------------------------------


def test_first_delta_ships_everything(registry):
    tracker = DeltaTracker(_seed(registry))
    delta = tracker.delta()
    assert delta["requests_total"]["series"] == [
        {"labels": {"code": "ok"}, "value": 3.0}
    ]
    assert delta["depth"]["series"][0]["value"] == 7.0
    histogram = delta["seconds"]["series"][0]
    assert histogram["count"] == 2
    assert histogram["exemplars"][0]["trace_id"] == "t-1"


def test_second_delta_is_only_the_increment(registry):
    tracker = DeltaTracker(_seed(registry))
    tracker.delta()
    registry.counter("requests_total").inc(2, code="ok")
    delta = tracker.delta()
    assert delta["requests_total"]["series"][0]["value"] == 2.0
    # Unchanged histogram series don't reappear.
    assert "seconds" not in delta


def test_quiet_registry_yields_only_gauge_levels(registry):
    tracker = DeltaTracker(_seed(registry))
    tracker.delta()
    # Counters and histograms are silent when unchanged; gauges are
    # levels, reported absolutely on every delta.
    assert set(tracker.delta()) == {"depth"}


def test_quiet_registry_without_gauges_yields_empty_delta():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    tracker = DeltaTracker(registry)
    tracker.delta()
    assert tracker.delta() == {}


def test_gauges_are_always_absolute(registry):
    registry.gauge("depth").set(7)
    tracker = DeltaTracker(registry)
    tracker.delta()
    registry.gauge("depth").set(2)
    assert tracker.delta()["depth"]["series"][0]["value"] == 2.0


def test_delta_fold_roundtrip_reconstructs_source(registry):
    """fold(delta_1) ∘ fold(delta_2) == the source registry's state."""
    tracker = DeltaTracker(_seed(registry))
    mirror = MetricsRegistry()
    fold_state(mirror, tracker.delta())
    registry.counter("requests_total").inc(code="err")
    registry.histogram("seconds", buckets=(0.1, 1.0)).observe(2.0)
    fold_state(mirror, tracker.delta())
    assert mirror.export_state() == registry.export_state()


# -- wire codec ----------------------------------------------------------------------


def test_codec_roundtrip(registry):
    state = _seed(registry).export_state()
    assert decode_state(encode_state(state)) == json.loads(
        json.dumps(state)
    )


def test_codec_is_deterministic(registry):
    state = _seed(registry).export_state()
    assert encode_state(state) == encode_state(state)


def test_decode_rejects_wrong_version(registry):
    blob = json.dumps(
        {"v": TELEMETRY_WIRE_VERSION + 1, "metrics": {}}
    ).encode()
    with pytest.raises(TelemetryCodecError):
        decode_state(blob)


@pytest.mark.parametrize(
    "blob",
    [
        b"not json",
        b"[]",
        b'{"metrics": {}}',  # missing version
        b'{"v": 1}',  # missing metrics
        b'{"v": 1, "metrics": {"m": {"kind": "exotic", "help": "", '
        b'"series": []}}}',
    ],
)
def test_decode_rejects_malformed(blob):
    with pytest.raises(TelemetryCodecError):
        decode_state(blob)


def test_decode_rejects_histogram_invariant_breach():
    bad = {
        "m": {
            "kind": "histogram",
            "help": "",
            "bounds": [0.1, 1.0],
            "series": [
                {"labels": {}, "buckets": [1, 0, 0], "sum": 0.05,
                 "count": 9}  # count != sum(buckets)
            ],
        }
    }
    blob = json.dumps({"v": 1, "metrics": bad}).encode()
    with pytest.raises(TelemetryCodecError):
        decode_state(blob)


def test_encode_rejects_non_finite(registry):
    state = {
        "g": {"kind": "gauge", "help": "", "series": [
            {"labels": {}, "value": float("inf")}
        ]}
    }
    with pytest.raises(TelemetryCodecError):
        encode_state(state)


# -- merge ---------------------------------------------------------------------------


def test_merge_sums_matching_label_sets():
    a = _seed(MetricsRegistry()).export_state()
    b = _seed(MetricsRegistry()).export_state()
    merged = merge_states(a, b)
    assert merged["requests_total"]["series"][0]["value"] == 6.0
    histogram = merged["seconds"]["series"][0]
    assert histogram["count"] == 4
    assert histogram["buckets"] == [2, 2, 0]


def test_merge_keeps_distinct_label_sets_apart():
    a = MetricsRegistry()
    a.counter("c").inc(1, shard="0")
    b = MetricsRegistry()
    b.counter("c").inc(2, shard="1")
    merged = merge_states(a.export_state(), b.export_state())
    assert [
        (s["labels"]["shard"], s["value"])
        for s in merged["c"]["series"]
    ] == [("0", 1.0), ("1", 2.0)]


def test_merge_rejects_kind_conflict():
    a = MetricsRegistry()
    a.counter("m").inc()
    b = MetricsRegistry()
    b.gauge("m").set(1)
    with pytest.raises(ValueError):
        merge_states(a.export_state(), b.export_state())


def test_merge_rejects_bounds_conflict():
    a = MetricsRegistry()
    a.histogram("m", buckets=(0.1,)).observe(0.05)
    b = MetricsRegistry()
    b.histogram("m", buckets=(0.2,)).observe(0.05)
    with pytest.raises(ValueError):
        merge_states(a.export_state(), b.export_state())


def test_merge_renders_as_prometheus():
    from repro.obs.export import render_prometheus

    merged = merge_states(
        _seed(MetricsRegistry()).export_state(),
        _seed(MetricsRegistry()).export_state(),
    )
    text = render_prometheus(merged)
    assert 'requests_total{code="ok"} 6' in text
    assert 'seconds_bucket{le="+Inf"} 4' in text


# -- fold ----------------------------------------------------------------------------


def test_fold_rejects_bounds_conflict(registry):
    registry.histogram("m", buckets=(0.5,)).observe(0.1)
    delta = {
        "m": {
            "kind": "histogram", "help": "", "bounds": [0.1],
            "series": [
                {"labels": {}, "buckets": [1, 0], "sum": 0.05, "count": 1}
            ],
        }
    }
    with pytest.raises(ValueError):
        fold_state(registry, delta)


def test_fold_carries_exemplars(registry):
    delta = {
        "m": {
            "kind": "histogram", "help": "", "bounds": [0.1, 1.0],
            "series": [{
                "labels": {"code": "ok"},
                "buckets": [1, 0, 0], "sum": 0.05, "count": 1,
                "exemplars": {0: {"trace_id": "t-9", "value": 0.05}},
            }],
        }
    }
    fold_state(registry, delta)
    assert 'trace_id="t-9"' in registry.render()
