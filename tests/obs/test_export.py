"""Exporters: JSONL span logs, Chrome trace events, metrics text."""

from __future__ import annotations

import io
import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    span_duration_metrics,
    write_metrics,
    write_trace,
)
from repro.obs.clock import ManualClock
from repro.obs.export import (
    SPAN_REQUIRED_FIELDS,
    chrome_trace_events,
    write_chrome_trace,
    write_spans_jsonl,
)


def traced_tree():
    clock = ManualClock(start=100.0, tick=0.5)
    tracer = Tracer(clock=clock)
    with tracer.span("root", request_id=1):
        with tracer.span("child"):
            pass
        with tracer.span("failed") as span:
            span.error("boom")
    return tracer


# -- JSONL -------------------------------------------------------------------------


def test_jsonl_one_record_per_line_with_required_fields():
    tracer = traced_tree()
    buf = io.StringIO()
    n = write_spans_jsonl(tracer, buf)
    lines = buf.getvalue().strip().splitlines()
    assert n == len(lines) == 3
    for line in lines:
        record = json.loads(line)
        for field in SPAN_REQUIRED_FIELDS:
            assert field in record


def test_jsonl_accepts_raw_records_and_paths(tmp_path):
    records = traced_tree().finished()
    path = tmp_path / "spans.jsonl"
    assert write_spans_jsonl(records, str(path)) == 3
    assert len(path.read_text().strip().splitlines()) == 3


def test_jsonl_serialises_non_json_attrs():
    tracer = Tracer()
    with tracer.span("s", weird=object()):
        pass
    buf = io.StringIO()
    write_spans_jsonl(tracer, buf)  # must not raise
    assert json.loads(buf.getvalue())["attrs"]["weird"]


# -- Chrome trace events -----------------------------------------------------------


def test_chrome_events_epoch_relative_microseconds():
    events = chrome_trace_events(traced_tree())
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 3
    assert min(e["ts"] for e in slices) == 0.0  # axis starts at zero
    for event in slices:
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert "trace_id" in event["args"]


def test_chrome_events_emit_process_name_metadata():
    events = chrome_trace_events(traced_tree())
    metas = [e for e in events if e["ph"] == "M"]
    assert len(metas) == 1
    assert metas[0]["name"] == "process_name"


def test_chrome_events_mark_error_status():
    events = chrome_trace_events(traced_tree())
    [failed] = [e for e in events if e.get("name") == "failed"]
    assert failed["args"]["status"] == "error"


def test_chrome_events_empty_tracer():
    assert chrome_trace_events(Tracer()) == []


def test_write_chrome_trace_document(tmp_path):
    path = tmp_path / "trace.json"
    n = write_chrome_trace(traced_tree(), str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n
    assert doc["displayTimeUnit"] == "ms"


def test_write_trace_dispatches_on_extension(tmp_path):
    tracer = traced_tree()
    jsonl = tmp_path / "out.jsonl"
    chrome = tmp_path / "out.json"
    write_trace(tracer, str(jsonl))
    write_trace(tracer, str(chrome))
    assert json.loads(jsonl.read_text().splitlines()[0])["name"]
    assert "traceEvents" in json.loads(chrome.read_text())


# -- the trace -> metrics bridge ---------------------------------------------------


def test_span_duration_metrics_by_name():
    registry = span_duration_metrics(traced_tree())
    h = registry.histogram("span_seconds")
    assert h.count(name="root") == 1
    assert h.count(name="child") == 1
    assert h.sum(name="child") > 0
    errors = registry.counter("span_errors_total")
    assert errors.value(name="failed") == 1
    assert errors.value(name="child") == 0


def test_span_duration_metrics_into_existing_registry():
    registry = MetricsRegistry()
    assert span_duration_metrics(traced_tree(), registry) is registry


# -- metrics text ------------------------------------------------------------------


def test_write_metrics_renders_registry(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c_total").inc()
    path = tmp_path / "metrics.txt"
    write_metrics(registry, str(path), extra_lines=["# built by test"])
    text = path.read_text()
    assert "c_total 1.0" in text
    assert text.endswith("# built by test\n")


def test_write_metrics_accepts_snapshot_mapping():
    buf = io.StringIO()
    write_metrics({"anything": {"nested": 1}}, buf)
    assert json.loads(buf.getvalue()) == {"anything": {"nested": 1}}
