"""The tracing core: nesting, error propagation, cross-process stitching."""

from __future__ import annotations

import threading

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.obs.clock import ManualClock
from repro.obs.trace import new_trace_id


def by_name(records, name):
    return [r for r in records if r["name"] == name]


# -- basic lifecycle ---------------------------------------------------------------


def test_span_records_timing_with_manual_clock():
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    span = tracer.span("work")
    clock.advance(1.5)
    span.finish()
    [record] = tracer.finished()
    assert record["name"] == "work"
    assert record["duration"] == pytest.approx(1.5)
    assert record["end"] - record["start"] == pytest.approx(1.5)
    assert record["status"] == "ok"


def test_finish_is_idempotent():
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    span = tracer.span("once")
    clock.advance(1.0)
    span.finish()
    clock.advance(5.0)
    span.finish()  # no-op: no double record, end unchanged
    [record] = tracer.finished()
    assert record["duration"] == pytest.approx(1.0)
    assert len(tracer.finished()) == 1


def test_attrs_from_kwargs_and_set():
    tracer = Tracer()
    with tracer.span("s", i=3) as span:
        span.set(j=7, rule="sum")
    [record] = tracer.finished()
    assert record["attrs"] == {"i": 3, "j": 7, "rule": "sum"}


def test_attrs_coerced_to_json_safe():
    tracer = Tracer()
    with tracer.span("s", obj=object(), ok=True, none=None):
        pass
    [record] = tracer.finished()
    assert isinstance(record["attrs"]["obj"], str)
    assert record["attrs"]["ok"] is True
    assert record["attrs"]["none"] is None


# -- nesting -----------------------------------------------------------------------


def test_with_blocks_nest_implicitly():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            with tracer.span("grandchild"):
                pass
    records = tracer.finished()
    assert [r["name"] for r in records] == ["grandchild", "child", "root"]
    gc, ch, rt = records
    assert rt["parent_id"] is None
    assert ch["parent_id"] == rt["span_id"]
    assert gc["parent_id"] == ch["span_id"]
    assert {r["trace_id"] for r in records} == {root.trace_id}
    assert child.trace_id == root.trace_id


def test_siblings_share_parent():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    a, b = by_name(tracer.finished(), "a") + by_name(tracer.finished(), "b")
    assert a["parent_id"] == root.span_id
    assert b["parent_id"] == root.span_id


def test_separate_roots_get_separate_traces():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    first, second = tracer.finished()
    assert first["trace_id"] != second["trace_id"]


def test_explicit_parent_overrides_stack():
    tracer = Tracer()
    detached = tracer.span("detached")
    with tracer.span("active"):
        with tracer.span("child", parent=detached):
            pass
    detached.finish()
    [child] = by_name(tracer.finished(), "child")
    assert child["parent_id"] == detached.span_id
    assert child["trace_id"] == detached.trace_id


def test_unentered_span_does_not_join_stack():
    """A span held open without ``with`` (the gateway pattern) must not
    become the implicit parent of unrelated spans on this thread."""
    tracer = Tracer()
    held = tracer.span("held")
    with tracer.span("other"):
        pass
    held.finish()
    [other] = by_name(tracer.finished(), "other")
    assert other["parent_id"] is None
    assert other["trace_id"] != held.trace_id


def test_thread_local_stacks_are_independent():
    tracer = Tracer()
    done = threading.Event()

    def worker():
        with tracer.span("threaded"):
            pass
        done.set()

    with tracer.span("main-root"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert done.is_set()
    [threaded] = by_name(tracer.finished(), "threaded")
    # the other thread does not inherit this thread's active span
    assert threaded["parent_id"] is None


# -- errors ------------------------------------------------------------------------


def test_exception_marks_error_and_propagates():
    tracer = Tracer()
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    [record] = tracer.finished()
    assert record["status"] == "error"
    assert "RuntimeError" in record["attrs"]["error"]


def test_explicit_error_mark():
    tracer = Tracer()
    with tracer.span("soft-fail") as span:
        span.error("worker_crashed")
    [record] = tracer.finished()
    assert record["status"] == "error"
    assert record["attrs"]["error"] == "worker_crashed"


def test_exception_does_not_overwrite_explicit_error():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("s") as span:
            span.error("first cause")
            raise ValueError("second")
    [record] = tracer.finished()
    assert record["attrs"]["error"] == "first cause"


# -- cross-process protocol --------------------------------------------------------


def test_explicit_ids_for_cross_process_parentage():
    """The worker side: open a span under ids that came over the wire."""
    tracer = Tracer()
    trace_id = new_trace_id()
    with tracer.span("worker.translate", trace_id=trace_id,
                     parent_id="feedbeef12345678"):
        pass
    [record] = tracer.finished()
    assert record["trace_id"] == trace_id
    assert record["parent_id"] == "feedbeef12345678"


def test_adopt_offsets_foreign_timestamps():
    theirs = Tracer(clock=ManualClock(start=1000.0, tick=1.0))
    with theirs.span("remote"):
        pass
    ours = Tracer()
    n = ours.adopt(theirs.clear(), align_to=5.0)
    assert n == 1
    [record] = ours.finished()
    # earliest adopted start lands exactly at align_to; duration preserved
    assert record["start"] == pytest.approx(5.0)
    assert record["end"] - record["start"] == pytest.approx(
        record["duration"]
    )


def test_adopt_without_offset_keeps_timestamps():
    theirs = Tracer(clock=ManualClock(start=42.0))
    theirs.span("r").finish()
    ours = Tracer()
    ours.adopt(theirs.clear())
    [record] = ours.finished()
    assert record["start"] == pytest.approx(42.0)


def test_adopt_empty_is_zero():
    assert Tracer().adopt([]) == 0


def test_adopt_does_not_mutate_caller_records():
    record = {"name": "r", "start": 10.0, "end": 11.0}
    Tracer().adopt([record], offset=100.0)
    assert record["start"] == 10.0


# -- buffer bound ------------------------------------------------------------------


def test_max_spans_bounds_buffer_and_counts_drops():
    tracer = Tracer(max_spans=3)
    for i in range(5):
        tracer.span(f"s{i}").finish()
    assert len(tracer.finished()) == 3
    assert tracer.dropped == 2
    # oldest kept, newest dropped
    assert [r["name"] for r in tracer.finished()] == ["s0", "s1", "s2"]


def test_clear_resets_buffer_and_drop_counter():
    tracer = Tracer(max_spans=1)
    tracer.span("a").finish()
    tracer.span("b").finish()
    drained = tracer.clear()
    assert len(drained) == 1 and tracer.dropped == 0
    assert tracer.finished() == []
    tracer.span("c").finish()
    assert [r["name"] for r in tracer.finished()] == ["c"]


def test_max_spans_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(max_spans=0)


# -- the null tracer ---------------------------------------------------------------


def test_null_tracer_is_disabled_and_collects_nothing():
    assert not NULL_TRACER.enabled
    with NULL_TRACER.span("anything", i=1) as span:
        span.set(j=2).error("ignored")
    assert NULL_TRACER.finished() == []
    assert NULL_TRACER.clear() == []
    assert NULL_TRACER.adopt([{"name": "x", "start": 0.0}]) == 0
    assert NULL_TRACER.current() is None


def test_null_span_is_shared_and_falsy():
    a = NULL_TRACER.span("a")
    b = NULL_TRACER.span("b")
    assert a is b
    assert not a  # `if span:` guards work
    assert a.as_dict() == {}


def test_null_span_swallows_nothing():
    with pytest.raises(KeyError):
        with NULL_TRACER.span("s"):
            raise KeyError("propagates")
