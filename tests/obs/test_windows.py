"""Windowed time-series: ring slots, window math, quantiles, expiry."""

from __future__ import annotations

import math

import pytest

from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import WindowedCounter, WindowedHistogram
from repro.obs.telemetry.windows import WindowSnapshot, _ring_params


@pytest.fixture
def clock():
    return ManualClock(start=1000.0)


@pytest.fixture
def registry(clock):
    return MetricsRegistry(clock=clock)


# -- ring parameters -----------------------------------------------------------------


def test_ring_params_round_up_to_whole_slots():
    assert _ring_params(10.0, 600.0) == (10.0, 60)
    assert _ring_params(10.0, 601.0) == (10.0, 61)


def test_ring_params_reject_bad_shapes():
    with pytest.raises(ValueError):
        _ring_params(0.0, 60.0)
    with pytest.raises(ValueError):
        _ring_params(10.0, 5.0)


# -- windowed histogram --------------------------------------------------------------


def test_window_covers_recent_observations(clock):
    h = WindowedHistogram(
        "h", buckets=(0.1, 1.0), interval=10.0, horizon=60.0, clock=clock
    )
    h.observe(0.05)
    h.observe(0.5)
    clock.advance(15.0)
    h.observe(2.0)
    window = h.window(60.0)
    assert window.count == 3
    assert window.sum == pytest.approx(2.55)
    assert window.buckets == [1, 1, 1]


def test_window_excludes_expired_slots(clock):
    h = WindowedHistogram(
        "h", buckets=(0.1, 1.0), interval=10.0, horizon=600.0, clock=clock
    )
    h.observe(0.05)
    clock.advance(120.0)
    h.observe(0.5)
    # 30 s window: only the second observation is inside.
    assert h.window(30.0).count == 1
    # The full horizon still sees both.
    assert h.window(600.0).count == 2


def test_ring_recycles_old_slots_in_place(clock):
    h = WindowedHistogram(
        "h", buckets=(1.0,), interval=10.0, horizon=30.0, clock=clock
    )
    h.observe(0.5)
    # One whole lap later the same position is recycled, not accumulated.
    clock.advance(30.0)
    h.observe(0.5)
    assert h.window(30.0).count == 1


def test_window_is_per_label_series(clock):
    h = WindowedHistogram("h", interval=10.0, horizon=60.0, clock=clock)
    h.observe(0.1, code="ok")
    h.observe(0.1, code="err")
    h.observe(0.1, code="err")
    assert h.window(60.0, code="ok").count == 1
    assert h.window(60.0, code="err").count == 2
    assert h.window(60.0, code="missing").count == 0


def test_cumulative_export_unchanged_by_ring(registry, clock):
    """The ring never leaks into snapshot()/render(): a windowed
    histogram is byte-identical to a plain one on the export side."""
    h = registry.windowed_histogram("h", buckets=(0.1, 1.0))
    plain = MetricsRegistry(clock=ManualClock(start=1000.0))
    p = plain.histogram("h", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 3.0):
        h.observe(value)
        p.observe(value)
    assert registry.render() == plain.render()
    assert registry.export_state() == plain.export_state()


def test_windowed_histogram_registers_as_histogram(registry):
    h = registry.windowed_histogram("h")
    # get-or-create through the plain accessor returns the same object:
    # isinstance(WindowedHistogram, Histogram) holds.
    assert registry.histogram("h") is h


def test_quantile_over_window(clock):
    h = WindowedHistogram(
        "h", buckets=(0.1, 0.5, 1.0), interval=10.0, horizon=60.0, clock=clock
    )
    for _ in range(95):
        h.observe(0.05)
    for _ in range(5):
        h.observe(0.7)
    assert h.quantile(0.5, 60.0) == pytest.approx(0.1)
    assert h.quantile(0.95, 60.0) == pytest.approx(0.1)
    assert h.quantile(0.99, 60.0) == pytest.approx(1.0)


def test_quantile_overflow_bucket_is_inf(clock):
    h = WindowedHistogram(
        "h", buckets=(0.1,), interval=10.0, horizon=60.0, clock=clock
    )
    h.observe(5.0)
    assert h.quantile(0.95, 60.0) == math.inf


def test_merge_series_lands_in_current_slot(clock):
    """A federated fold becomes visible in window queries at fold time."""
    h = WindowedHistogram(
        "h", buckets=(0.1, 1.0), interval=10.0, horizon=60.0, clock=clock
    )
    h.merge_series({"code": "ok"}, [2, 1, 0], 0.4, 3)
    window = h.window(30.0, code="ok")
    assert window.count == 3
    assert window.sum == pytest.approx(0.4)


# -- window snapshot -----------------------------------------------------------------


def test_snapshot_merge_requires_matching_bounds():
    a = WindowSnapshot(bounds=(0.1,), buckets=[1, 0], seconds=60.0)
    b = WindowSnapshot(bounds=(0.2,), buckets=[0, 1], seconds=60.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_snapshot_merge_adds_and_rate():
    a = WindowSnapshot(
        bounds=(0.1,), buckets=[3, 0], sum=0.15, count=3, seconds=60.0
    )
    b = WindowSnapshot(
        bounds=(0.1,), buckets=[0, 2], sum=4.0, count=2, seconds=60.0
    )
    a.merge(b)
    assert a.count == 5 and a.buckets == [3, 2]
    assert a.rate == pytest.approx(5 / 60.0)
    assert a.mean == pytest.approx(4.15 / 5)


def test_empty_snapshot_quantile_and_rate():
    empty = WindowSnapshot(bounds=(0.1,), buckets=[0, 0])
    assert empty.quantile(0.95) == 0.0
    assert empty.rate == 0.0


def test_quantile_rejects_out_of_range():
    snap = WindowSnapshot(bounds=(0.1,), buckets=[1, 0], count=1)
    with pytest.raises(ValueError):
        snap.quantile(0.0)
    with pytest.raises(ValueError):
        snap.quantile(1.5)


# -- windowed counter ----------------------------------------------------------------


def test_counter_window_sum_and_rate(clock):
    c = WindowedCounter("c", interval=60.0, horizon=3600.0, clock=clock)
    c.inc(5, code="ok")
    clock.advance(120.0)
    c.inc(1, code="ok")
    assert c.value(code="ok") == 6
    assert c.window_sum(60.0, code="ok") == 1
    assert c.window_sum(3600.0, code="ok") == 6
    assert c.rate(60.0, code="ok") == pytest.approx(1 / 60.0)


def test_counter_window_expires(clock):
    c = WindowedCounter("c", interval=60.0, horizon=300.0, clock=clock)
    c.inc(10)
    clock.advance(400.0)
    assert c.window_sum(300.0) == 0
    assert c.value() == 10  # cumulative value never expires


def test_counter_rejects_negative(clock):
    c = WindowedCounter("c", clock=clock)
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_export_matches_plain(clock):
    registry = MetricsRegistry(clock=clock)
    c = registry.windowed_counter("c")
    c.inc(3, code="ok")
    plain = MetricsRegistry()
    plain.counter("c").inc(3, code="ok")
    assert registry.render() == plain.render()
    assert registry.export_state() == plain.export_state()
