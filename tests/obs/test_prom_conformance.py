"""Prometheus exposition conformance: escaping, sanitisation, invariants.

Two layers under test: :func:`repro.obs.export.render_prometheus` (the
single renderer behind ``render()``, ``GET /metrics``, and the federated
cluster view) and ``scripts/check_prom.py`` (the promtool-style linter
CI runs over live server output).  The renderer's output must lint
clean; the linter must catch the breakages the renderer prevents.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.obs.export import (
    render_prometheus,
    sanitize_label_name,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import merge_states

_SPEC = importlib.util.spec_from_file_location(
    "check_prom",
    Path(__file__).resolve().parents[2] / "scripts" / "check_prom.py",
)
check_prom = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_prom", check_prom)
_SPEC.loader.exec_module(check_prom)


def render_registry(registry):
    return render_prometheus(registry.export_state())


# -- name and label sanitisation -----------------------------------------------------


def test_metric_name_sanitisation():
    assert sanitize_metric_name("requests_total") == "requests_total"
    assert sanitize_metric_name("beam:stage_seconds") == "beam:stage_seconds"
    assert sanitize_metric_name("my.metric-name") == "my_metric_name"
    assert sanitize_metric_name("2fast") == "_2fast"
    assert sanitize_metric_name("") == "_"


def test_label_name_sanitisation():
    assert sanitize_label_name("code") == "code"
    assert sanitize_label_name("http.status") == "http_status"
    assert sanitize_label_name("le:gacy") == "le_gacy"
    assert sanitize_label_name("9lives") == "_9lives"


def test_label_value_escaping_roundtrips_the_linter():
    registry = MetricsRegistry()
    registry.counter("c").inc(code='quote " backslash \\ newline \n end')
    text = render_registry(registry)
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    assert check_prom.lint(text) == []


def test_weird_metric_and_label_names_render_lintable():
    registry = MetricsRegistry()
    registry.counter("span.seconds-by-name").inc(**{"span_name": "a b"})
    text = render_registry(registry)
    assert "span_seconds_by_name" in text
    assert check_prom.lint(text) == []


# -- histogram invariants ------------------------------------------------------------


def test_histogram_renders_cumulative_with_inf():
    registry = MetricsRegistry()
    h = registry.histogram("seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.05, 0.5, 3.0):
        h.observe(v)
    text = render_registry(registry)
    assert 'seconds_bucket{le="0.1"} 2' in text
    assert 'seconds_bucket{le="1.0"} 3' in text
    assert 'seconds_bucket{le="+Inf"} 4' in text
    assert "seconds_count 4" in text
    assert "seconds_sum 3.6" in text
    assert check_prom.lint(text) == []


def test_exemplars_only_on_bucket_lines():
    registry = MetricsRegistry()
    registry.histogram("seconds", buckets=(0.1,)).observe(
        0.05, exemplar="trace-1"
    )
    text = render_registry(registry)
    bucket_lines = [l for l in text.splitlines() if "# {" in l]
    assert bucket_lines and all("_bucket" in l for l in bucket_lines)
    assert 'trace_id="trace-1"' in bucket_lines[0]
    assert check_prom.lint(text) == []


def test_federated_merge_lints_clean():
    shards = []
    for shard in range(3):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(2, shard=str(shard))
        registry.histogram("seconds", buckets=(0.1, 1.0)).observe(
            0.05, exemplar=f"t-{shard}"
        )
        shards.append(registry.export_state())
    text = render_prometheus(merge_states(*shards))
    assert check_prom.lint(text) == []


def test_full_telemetry_surface_lints_clean():
    """The hub's whole metric family — windowed series, SLO events,
    sampler accounting — renders a clean exposition."""
    from repro.obs.telemetry import TelemetryHub

    class Result:
        ok = True
        error_code = None
        tier = "full"
        total_seconds = 0.02
        degraded = anytime = cached = False
        elapsed = 0.02
        queue_seconds = 0.001
        worker_id = 1
        fingerprint = "f" * 12

    hub = TelemetryHub(metrics=MetricsRegistry(), scope="gateway")
    for i in range(20):
        hub.observe(Result(), trace_id=f"t-{i}")
    text = render_prometheus(hub.metrics.export_state())
    assert "telemetry_requests_total" in text
    assert "slo_events_total" in text
    assert check_prom.lint(text) == []


# -- the linter catches what the renderer prevents -----------------------------------


@pytest.mark.parametrize(
    "text,needle",
    [
        ("# TYPE c counter\nc{bad-name=\"x\"} 1\n", "malformed label set"),
        ("# TYPE c counter\nc 1\nc 2\n", "duplicate sample"),
        ("c 1\n", "before any TYPE"),
        ("# TYPE c counter\nc notanumber\n", "bad sample value"),
        ("# TYPE c counter\n# TYPE c gauge\nc 1\n", "duplicate TYPE"),
        ("# TYPE c widget\nc 1\n", "unknown type"),
        (
            '# TYPE c counter\nc{v="unterminated\\q"} 1\n',
            "bad escape",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\nh_sum 0.05\nh_count 1\n',
            'no le="+Inf"',
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 0.1\nh_count 3\n",
            "not cumulative",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_sum 0.1\nh_count 9\n',
            "_count 9",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_count 3\n',
            "missing _sum",
        ),
        (
            "# TYPE c counter\nc 1 # {trace_id=\"t\"} 1\n",
            "exemplar on non-bucket",
        ),
    ],
)
def test_linter_catches(text, needle):
    errors = check_prom.lint(text)
    assert any(needle in error for error in errors), errors


def test_linter_accepts_clean_document():
    text = (
        "# HELP requests_total requests\n"
        "# TYPE requests_total counter\n"
        'requests_total{code="ok"} 5\n'
        "# TYPE seconds histogram\n"
        'seconds_bucket{le="0.1"} 2 # {trace_id="t-1"} 0.05\n'
        'seconds_bucket{le="+Inf"} 2\n'
        "seconds_sum 0.1\n"
        "seconds_count 2\n"
    )
    assert check_prom.lint(text) == []
