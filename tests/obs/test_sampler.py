"""Tail sampling: verdicts, the byte cap, eviction order, accounting."""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TailSampler


def make_sampler(**kwargs):
    kwargs.setdefault("clock", ManualClock(start=100.0))
    kwargs.setdefault("rng", random.Random(7))
    return TailSampler(**kwargs)


# -- classification ------------------------------------------------------------------


def test_classify_verdicts():
    sampler = make_sampler(slow_threshold=1.0)
    assert sampler.classify(False, "shed_overload", 0.0) == "shed"
    assert sampler.classify(False, "worker_crashed", 0.1) == "error"
    assert sampler.classify(True, None, 2.0) == "slow"
    assert sampler.classify(True, None, 0.1) == "ok"


def test_interesting_verdicts_always_retained():
    sampler = make_sampler(ok_rate=0.0)
    for i, verdict in enumerate(("error", "shed", "slow")):
        assert sampler.offer(f"t-{i}", verdict, {}) is True
    assert sampler.stats()["entries"] == 3


def test_ok_sampled_probabilistically():
    sampler = make_sampler(ok_rate=0.5, rng=random.Random(7))
    kept = sum(
        sampler.offer(f"t-{i}", "ok", {}) for i in range(1000)
    )
    assert 400 < kept < 600
    stats = sampler.stats()
    assert stats["unsampled_ok"] == 1000 - kept


def test_ok_rate_zero_keeps_none():
    sampler = make_sampler(ok_rate=0.0)
    assert sampler.offer("t", "ok", {}) is False
    assert sampler.stats()["entries"] == 0


def test_unknown_verdict_rejected():
    with pytest.raises(ValueError):
        make_sampler().offer("t", "weird", {})


# -- the byte cap --------------------------------------------------------------------


def test_bytes_stay_under_cap_during_storm():
    sampler = make_sampler(max_bytes=4096, ok_rate=1.0)
    for i in range(200):
        sampler.offer(f"err-{i}", "error", {"detail": "x" * 50})
    stats = sampler.stats()
    assert stats["bytes"] <= 4096
    assert stats["entries"] > 0


def test_eviction_prefers_oldest_ok():
    sampler = make_sampler(max_bytes=600, ok_rate=1.0)
    sampler.offer("ok-old", "ok", {"pad": "x" * 100})
    sampler.offer("err-1", "error", {"pad": "x" * 100})
    sampler.offer("err-2", "error", {"pad": "x" * 100})
    sampler.offer("err-3", "error", {"pad": "x" * 100})
    retained = {t["trace_id"] for t in sampler.traces()}
    assert "ok-old" not in retained  # the ok background went first
    assert {"err-1", "err-2", "err-3"} <= retained


def test_errors_survive_storm_while_ok_displaced():
    """100% of error traces retained while ok entries absorb eviction,
    as long as the errors themselves fit the budget."""
    sampler = make_sampler(max_bytes=20_000, ok_rate=1.0)
    for i in range(50):
        sampler.offer(f"ok-{i}", "ok", {"pad": "x" * 100})
    for i in range(50):
        sampler.offer(f"err-{i}", "error", {"pad": "x" * 100})
    retained = {t["trace_id"] for t in sampler.traces()}
    assert all(f"err-{i}" in retained for i in range(50))


def test_oversize_single_record_dropped():
    sampler = make_sampler(max_bytes=256)
    assert sampler.offer("big", "error", {"pad": "x" * 1000}) is False
    stats = sampler.stats()
    assert stats["entries"] == 0
    assert stats["evicted"]["error"] == 1


def test_duplicate_trace_id_replaces_entry():
    sampler = make_sampler()
    sampler.offer("t-1", "ok" if False else "error", {"attempt": 1})
    sampler.offer("t-1", "error", {"attempt": 2})
    traces = sampler.traces()
    assert len(traces) == 1
    assert traces[0]["attempt"] == 2


# -- read side -----------------------------------------------------------------------


def test_jsonl_lines_roundtrip():
    sampler = make_sampler()
    sampler.offer("t-1", "error", {"code": "worker_crashed"})
    lines = sampler.jsonl()
    assert len(lines) == 1 and lines[0].endswith("\n")
    record = json.loads(lines[0])
    assert record["trace_id"] == "t-1"
    assert record["verdict"] == "error"
    assert record["code"] == "worker_crashed"
    assert record["at"] == pytest.approx(100.0)


def test_registry_metrics_track_sampler():
    registry = MetricsRegistry()
    sampler = make_sampler(max_bytes=600, ok_rate=1.0, metrics=registry)
    sampler.offer("ok-1", "ok", {"pad": "x" * 100})
    for i in range(4):
        sampler.offer(f"err-{i}", "error", {"pad": "x" * 100})
    sampled = registry.counter("telemetry_sampled_traces_total")
    assert sampled.value(verdict="error") == 4
    evictions = registry.counter("telemetry_sampler_evictions_total")
    assert evictions.total() >= 1
    gauge = registry.gauge("telemetry_sampler_bytes")
    assert 0 < gauge.value() <= 600


def test_validation():
    with pytest.raises(ValueError):
        TailSampler(max_bytes=0)
    with pytest.raises(ValueError):
        TailSampler(ok_rate=1.5)
