"""ManualClock — the deterministic timing seam."""

from __future__ import annotations

import pytest

from repro.obs.clock import ManualClock, monotonic, perf, wall


def test_real_clocks_are_callables():
    assert monotonic() <= monotonic()
    assert perf() <= perf()
    assert isinstance(wall(), float)


def test_manual_clock_starts_where_told():
    clock = ManualClock(start=41.5)
    assert clock() == 41.5


def test_advance_moves_time_forward():
    clock = ManualClock()
    assert clock() == 0.0
    clock.advance(2.5)
    assert clock() == 2.5
    clock.advance(0.5)
    assert clock() == 3.0


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        ManualClock().advance(-1.0)


def test_tick_adds_on_every_read():
    clock = ManualClock(tick=0.25)
    assert clock() == 0.25
    assert clock() == 0.5
    # code measuring clock() - clock() sees a non-zero interval
    start = clock()
    assert clock() - start == 0.25


def test_tick_rejects_negative():
    with pytest.raises(ValueError):
        ManualClock(tick=-0.1)


def test_reads_counter():
    clock = ManualClock()
    clock(), clock(), clock()
    assert clock.reads == 3
