"""Structured logging: JSON formatter, REPRO_LOG parsing, timed blocks."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import (
    ENV_VAR,
    JsonFormatter,
    TextFormatter,
    configure,
    configure_from_env,
    fields,
    get_logger,
    timed,
)


@pytest.fixture(autouse=True)
def clean_handlers():
    """Each test gets a pristine ``repro`` logger and restores it after."""
    root = get_logger()
    saved = list(root.handlers), root.level, root.propagate
    for handler in list(root.handlers):
        root.removeHandler(handler)
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handlers, root.level, root.propagate = saved
    for handler in handlers:
        root.addHandler(handler)


def capture(level="debug", json_format=True):
    stream = io.StringIO()
    configure(level=level, stream=stream, json_format=json_format, force=True)
    return stream


def test_get_logger_hierarchy():
    assert get_logger().name == "repro"
    assert get_logger("serve.pool").name == "repro.serve.pool"


def test_fields_builds_extra_mapping():
    assert fields(slot=3, warm=True) == {"fields": {"slot": 3, "warm": True}}


def test_json_records_carry_structured_fields():
    stream = capture()
    get_logger("serve.pool").warning(
        "worker crashed", extra=fields(slot=3, restarts=2)
    )
    record = json.loads(stream.getvalue())
    assert record["level"] == "warning"
    assert record["logger"] == "repro.serve.pool"
    assert record["msg"] == "worker crashed"
    assert record["slot"] == 3
    assert record["restarts"] == 2
    assert isinstance(record["ts"], float)


def test_json_formatter_inlines_exceptions():
    stream = capture()
    try:
        raise ValueError("bad")
    except ValueError:
        get_logger().error("failed", exc_info=True)
    record = json.loads(stream.getvalue())
    assert "ValueError: bad" in record["exc"]


def test_json_formatter_handles_non_json_values():
    stream = capture()
    get_logger().info("msg", extra=fields(obj=object()))
    assert json.loads(stream.getvalue())["obj"]  # str()-coerced, not a crash


def test_text_formatter_appends_fields():
    stream = capture(json_format=False)
    get_logger().warning("crashed", extra=fields(slot=1))
    line = stream.getvalue()
    assert "crashed" in line and "[slot=1]" in line
    with pytest.raises(json.JSONDecodeError):
        json.loads(line)


def test_configure_is_idempotent_without_force():
    stream = capture()
    assert configure(stream=io.StringIO()) is None  # second call: no-op
    get_logger().info("kept")
    assert "kept" in stream.getvalue()


def test_configure_force_replaces_handler():
    first = capture()
    second = capture()
    get_logger().info("routed")
    assert first.getvalue() == ""
    assert "routed" in second.getvalue()


def test_level_filtering():
    stream = capture(level="warning")
    log = get_logger()
    log.debug("quiet")
    log.info("quiet")
    log.warning("loud")
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["msg"] == "loud"


# -- REPRO_LOG parsing -------------------------------------------------------------


def test_env_unset_leaves_logging_off():
    assert configure_from_env({}) is False
    assert not get_logger().handlers


def test_env_level_enables_json():
    assert configure_from_env({ENV_VAR: "debug"}) is True
    root = get_logger()
    assert root.level == logging.DEBUG
    assert isinstance(root.handlers[0].formatter, JsonFormatter)


def test_env_text_prefix_selects_text_formatter():
    assert configure_from_env({ENV_VAR: "text:warning"}) is True
    root = get_logger()
    assert root.level == logging.WARNING
    assert isinstance(root.handlers[0].formatter, TextFormatter)


def test_env_bare_json_defaults_to_info():
    assert configure_from_env({ENV_VAR: "json"}) is True
    assert get_logger().level == logging.INFO


def test_env_off_silences_even_warnings():
    assert configure_from_env({ENV_VAR: "off"}) is False
    root = get_logger()
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
    assert root.propagate is False


def test_env_unknown_level_falls_back_to_info():
    assert configure_from_env({ENV_VAR: "shouting"}) is True
    assert get_logger().level == logging.INFO


# -- timed -------------------------------------------------------------------------


def test_timed_logs_elapsed_at_debug():
    stream = capture(level="debug")
    with timed(get_logger("t"), "respawn", slot=2):
        pass
    record = json.loads(stream.getvalue())
    assert record["msg"] == "respawn"
    assert record["slot"] == 2
    assert record["seconds"] >= 0
