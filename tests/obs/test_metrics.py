"""MetricsRegistry: counters, gauges, histograms, labels, rendering."""

from __future__ import annotations

import threading

import pytest

from repro.obs.clock import ManualClock
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    snapshot_of,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# -- counter -----------------------------------------------------------------------


def test_counter_increments(registry):
    c = registry.counter("requests_total")
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5
    assert c.total() == 3.5


def test_counter_labels_are_independent_series(registry):
    c = registry.counter("events_total")
    c.inc(event="ok")
    c.inc(event="ok")
    c.inc(event="shed")
    assert c.value(event="ok") == 2
    assert c.value(event="shed") == 1
    assert c.value(event="missing") == 0
    assert c.total() == 3


def test_counter_rejects_negative(registry):
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_label_order_does_not_matter(registry):
    c = registry.counter("c")
    c.inc(a="1", b="2")
    assert c.value(b="2", a="1") == 1


# -- gauge -------------------------------------------------------------------------


def test_gauge_set_inc_dec(registry):
    g = registry.gauge("queue_depth")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value() == 4


def test_gauge_can_go_negative(registry):
    g = registry.gauge("g")
    g.dec(3)
    assert g.value() == -3


# -- histogram ---------------------------------------------------------------------


def test_histogram_count_sum_mean(registry):
    h = registry.histogram("latency_seconds")
    for v in (0.001, 0.003, 0.002):
        h.observe(v)
    assert h.count() == 3
    assert h.sum() == pytest.approx(0.006)
    assert h.mean() == pytest.approx(0.002)


def test_histogram_empty_mean_is_zero(registry):
    assert registry.histogram("h").mean() == 0.0


def test_histogram_bucketing(registry):
    h = registry.histogram("h", buckets=(0.1, 1.0))
    h.observe(0.05)   # <= 0.1
    h.observe(0.5)    # <= 1.0
    h.observe(99.0)   # +Inf
    snap = h.snapshot()["series"][()]
    assert snap["buckets"] == [1, 1, 1]


def test_histogram_bounds_sorted_and_deduped(registry):
    h = registry.histogram("h", buckets=(1.0, 0.1, 1.0))
    assert h.bounds == (0.1, 1.0)


def test_histogram_needs_buckets(registry):
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=())


def test_default_buckets_cover_latency_range():
    assert DEFAULT_BUCKETS[0] <= 0.001
    assert DEFAULT_BUCKETS[-1] >= 5.0


def test_timer_observes_elapsed():
    clock = ManualClock(tick=0.5)
    registry = MetricsRegistry(clock)
    with registry.timer("stage_seconds", stage="rank") as t:
        pass
    assert t.seconds == pytest.approx(0.5)
    h = registry.histogram("stage_seconds")
    assert h.count(stage="rank") == 1
    assert h.sum(stage="rank") == pytest.approx(0.5)


# -- registry ----------------------------------------------------------------------


def test_get_or_create_returns_same_object(registry):
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_kind_conflict_raises(registry):
    registry.counter("dual")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("dual")


def test_snapshot_is_plain_data(registry):
    import json

    registry.counter("c", "a counter").inc(code="ok")
    registry.gauge("g").set(7)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    json.dumps(snap)  # JSON-safe throughout
    assert snap["c"]["kind"] == "counter"
    assert snap["c"]["series"]['{code="ok"}'] == 1
    assert snap["g"]["series"][""] == 7
    assert snap["h"]["series"][""]["count"] == 1


def test_render_prometheus_text(registry):
    registry.counter("requests_total", "total requests").inc(3, code="ok")
    registry.gauge("depth").set(2)
    registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
    text = registry.render()
    assert "# HELP requests_total total requests" in text
    assert "# TYPE requests_total counter" in text
    assert 'requests_total{code="ok"} 3.0' in text
    assert "depth 2.0" in text
    assert "# TYPE lat_seconds histogram" in text
    # cumulative le buckets, terminal +Inf equals count
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1.0"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_sum 0.05" in text
    assert "lat_seconds_count 1" in text
    assert text.endswith("\n")


def test_render_histogram_with_labels(registry):
    h = registry.histogram("s", buckets=(1.0,))
    h.observe(0.5, name="rank")
    text = registry.render()
    assert 's_bucket{name="rank",le="1.0"} 1' in text
    assert 's_bucket{name="rank",le="+Inf"} 1' in text
    assert 's_sum{name="rank"} 0.5' in text


# -- snapshot protocol -------------------------------------------------------------


def test_snapshot_of_prefers_objects_own_snapshot():
    class Thing:
        def snapshot(self):
            return {"x": 1}

    assert snapshot_of(Thing()) == {"x": 1}


def test_snapshot_of_dataclass_recurses():
    import dataclasses

    class Inner:
        def snapshot(self):
            return {"deep": True}

    @dataclasses.dataclass
    class Outer:
        n: int
        inner: Inner
        items: list

    out = snapshot_of(Outer(n=2, inner=Inner(), items=[Inner(), 5]))
    assert out == {"n": 2, "inner": {"deep": True}, "items": [{"deep": True}, 5]}


def test_snapshot_of_rejects_plain_objects():
    with pytest.raises(TypeError):
        snapshot_of(object())


# -- thread safety -----------------------------------------------------------------


def test_concurrent_increments_lose_nothing(registry):
    """The race the old hand-rolled ``+= 1`` counters had."""
    c = registry.counter("hot_total")
    g = registry.gauge("hot_gauge")
    h = registry.histogram("hot_seconds", buckets=(1.0,))
    n, threads = 2000, 8

    def hammer():
        for _ in range(n):
            c.inc(event="x")
            g.inc()
            h.observe(0.5)

    pool = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert c.value(event="x") == n * threads
    assert g.value() == n * threads
    assert h.count() == n * threads
