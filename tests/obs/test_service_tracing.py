"""Instrumentation of the translator DP loop and the service ladder.

These tests pin the span taxonomy documented in docs/OBSERVABILITY.md:
what a traced in-process translation emits, how the tree hangs together,
and that the stage timings are real numbers under a deterministic clock.
"""

from __future__ import annotations

import pytest

from repro.cache import ResultCache
from repro.obs import Tracer
from repro.runtime import TranslationService
from repro.translate import Translator

from ..conftest import make_payroll

SENTENCE = "sum the totalpay where the location is capitol hill"


def tree(records):
    """Map span_id -> record, and assert every parent link resolves."""
    by_id = {r["span_id"]: r for r in records}
    for record in records:
        if record["parent_id"] is not None:
            assert record["parent_id"] in by_id, (
                f"dangling parent on {record['name']}"
            )
    return by_id


def roots(records):
    return [r for r in records if r["parent_id"] is None]


# -- translator --------------------------------------------------------------------


def test_translator_emits_stage_spans():
    tracer = Tracer()
    translator = Translator(make_payroll())
    candidates = translator.translate(SENTENCE, tracer=tracer)
    assert candidates
    records = tracer.finished()
    names = {r["name"] for r in records}
    assert {"translate", "translate.tokenize", "translate.seeds",
            "translate.rules", "translate.rank"} <= names
    # the DP loop really runs per sentence-span: many seed/rule spans
    assert len([r for r in records if r["name"] == "translate.seeds"]) > 5

    by_id = tree(records)
    [root] = roots(records)
    assert root["name"] == "translate"
    # every stage span sits inside the translate root's trace
    assert {r["trace_id"] for r in records} == {root["trace_id"]}
    for record in records:
        if record is not root:
            top = record
            while top["parent_id"] is not None:
                top = by_id[top["parent_id"]]
            assert top is root


def test_translator_span_attrs_carry_dp_coordinates():
    tracer = Tracer()
    Translator(make_payroll()).translate(SENTENCE, tracer=tracer)
    seeds = [r for r in tracer.finished() if r["name"] == "translate.seeds"]
    for record in seeds:
        assert isinstance(record["attrs"]["i"], int)
        assert isinstance(record["attrs"]["j"], int)
        assert record["attrs"]["j"] > record["attrs"]["i"]


def test_untraced_translation_unchanged():
    """The default (NULL_TRACER) path produces identical candidates."""
    workbook = make_payroll()
    translator = Translator(workbook)
    plain = translator.translate(SENTENCE)
    tracer = Tracer()
    traced = translator.translate(SENTENCE, tracer=tracer)
    assert [(c.excel(workbook), c.score) for c in plain] == [
        (c.excel(workbook), c.score) for c in traced
    ]


def test_stage_spans_nest_within_translate_window():
    tracer = Tracer()
    Translator(make_payroll()).translate(SENTENCE, tracer=tracer)
    records = tracer.finished()
    [root] = roots(records)
    for record in records:
        assert record["start"] >= root["start"]
        assert record["end"] <= root["end"] + 1e-9


# -- service -----------------------------------------------------------------------


def test_service_request_wraps_tier_and_translate():
    tracer = Tracer()
    service = TranslationService(make_payroll())
    result = service.translate(SENTENCE, tracer=tracer)
    assert result.ok
    records = tracer.finished()
    [root] = roots(records)
    assert root["name"] == "service.request"
    assert root["attrs"]["tier"] == result.tier
    assert root["attrs"]["cached"] is False
    by_id = tree(records)
    [tier_span] = [r for r in records if r["name"] == "service.tier"]
    assert tier_span["parent_id"] == root["span_id"]
    [translate] = [r for r in records if r["name"] == "translate"]
    assert by_id[translate["parent_id"]]["name"] == "service.tier"


def test_cached_request_emits_probe_hit_and_skips_translate():
    tracer = Tracer()
    service = TranslationService(make_payroll(), cache=ResultCache())
    service.translate(SENTENCE)  # warm (untraced)
    result = service.translate(SENTENCE, tracer=tracer)
    assert result.cached
    records = tracer.finished()
    names = [r["name"] for r in records]
    assert "translate" not in names  # hit short-circuits the DP loop
    [probe] = [r for r in records if r["name"] == "cache.probe"]
    assert probe["attrs"]["hit"] is True
    [root] = roots(records)
    assert root["attrs"]["cached"] is True


def test_cold_request_emits_commit_span():
    tracer = Tracer()
    service = TranslationService(make_payroll(), cache=ResultCache())
    service.translate(SENTENCE, tracer=tracer)
    names = [r["name"] for r in tracer.finished()]
    assert "cache.probe" in names
    assert "cache.commit" in names


def test_service_tracer_set_at_construction():
    tracer = Tracer()
    service = TranslationService(make_payroll(), tracer=tracer)
    service.translate(SENTENCE)
    assert any(r["name"] == "service.request" for r in tracer.finished())


def test_per_request_tracer_overrides_service_default():
    default = Tracer()
    override = Tracer()
    service = TranslationService(make_payroll(), tracer=default)
    service.translate(SENTENCE, tracer=override)
    assert default.finished() == []
    assert any(r["name"] == "service.request" for r in override.finished())


def test_failed_translation_marks_root_error():
    tracer = Tracer()
    service = TranslationService(make_payroll())
    result = service.translate("", tracer=tracer)
    assert not result.ok
    [root] = [r for r in tracer.finished() if r["name"] == "service.request"]
    assert root["status"] == "error"
    assert root["attrs"]["error_code"] == result.error_code


@pytest.mark.parametrize("sentence", [SENTENCE, "average the hours"])
def test_one_request_one_trace(sentence):
    tracer = Tracer()
    service = TranslationService(make_payroll())
    service.translate(sentence, tracer=tracer)
    records = tracer.finished()
    assert len({r["trace_id"] for r in records}) == 1
    assert len(roots(records)) == 1
