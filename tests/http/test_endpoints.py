"""Golden request/response conformance for every endpoint and error code.

One test per row of the status-mapping table in docs/HTTP.md: the
backend is scripted to produce each outcome and the wire response —
status line, headers, body shape — is asserted exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.http import status_for
from repro.http.server import INPUT_CODES, RETRYABLE_CODES

from .conftest import FakeBackend, http_request, make_result


def _translate(server, sentence="sum the hours", **extra):
    body = {"sentence": sentence, **extra}
    return http_request(server.port, "POST", "/translate", body=body)


# -- plumbing endpoints --------------------------------------------------------------


def test_healthz(fake_server):
    _, server = fake_server
    resp = http_request(server.port, "GET", "/healthz")
    assert resp.status == 200
    assert resp.json() == {"status": "ok"}
    assert resp.headers["content-type"] == "application/json"


def test_metrics_exposition(fake_server):
    backend, server = fake_server
    _translate(server)
    resp = http_request(server.port, "GET", "/metrics")
    assert resp.status == 200
    assert resp.headers["content-type"].startswith("text/plain")
    text = resp.body.decode("utf-8")
    assert "# TYPE http_requests_total counter" in text
    assert 'http_requests_total{endpoint="/translate",status="200"} 1.0' in text
    # The server registers into the backend's registry: one exposition.
    assert backend.metrics.counter("http_requests_total").value(
        endpoint="/translate", status=200
    ) == 1.0


def test_stats_serves_backend_snapshot(fake_server):
    backend, server = fake_server
    _translate(server)
    resp = http_request(server.port, "GET", "/stats")
    assert resp.status == 200
    assert resp.json()["submitted"] == len(backend.submissions) == 1


def test_traces_streams_ndjson(make_server, payroll_workbook):
    from repro.obs import Tracer

    tracer = Tracer()
    with tracer.span("unit.test", request_id=7):
        pass
    backend = FakeBackend()
    server = make_server(backend, tracer=tracer)
    resp = http_request(server.port, "GET", "/traces")
    assert resp.status == 200
    assert resp.chunked and resp.terminated
    records = resp.ndjson()
    assert [r["name"] for r in records] == ["unit.test"]
    assert records[0]["attrs"]["request_id"] == 7


def test_unknown_path_404(fake_server):
    _, server = fake_server
    resp = http_request(server.port, "GET", "/nope")
    assert resp.status == 404
    assert resp.json()["error_code"] == "not_found"


def test_wrong_method_405(fake_server):
    _, server = fake_server
    resp = http_request(server.port, "GET", "/translate")
    assert resp.status == 405
    assert resp.json()["error_code"] == "method_not_allowed"
    assert http_request(server.port, "POST", "/metrics").status == 405


# -- /translate success shapes -------------------------------------------------------


def test_translate_ok_golden(fake_server):
    backend, server = fake_server
    resp = _translate(server, sentence="sum the hours")
    assert resp.status == 200
    body = resp.json()
    assert body["result"] == {
        "ok": True,
        "error_code": None,
        "error": None,
        "tier": "full",
        "degraded": False,
        "anytime": False,
        "n_candidates": 2,
        "programs": [["Sum(hours)", 0.9], ["Count(hours)", 0.4]],
        "top_formula": "=SUM(D2:D7)",
    }
    serving = body["serving"]
    assert serving["worker_id"] == 0 and serving["warm"] is False
    assert backend.submissions == [("sum the hours", {})]


def test_translate_deadline_ms_forwarded(fake_server):
    backend, server = fake_server
    resp = _translate(server, deadline_ms=250)
    assert resp.status == 200
    assert backend.submissions[0][1] == {"deadline": 0.25}


def test_translate_deadline_clamped_to_max(fake_server):
    backend, server = fake_server
    _translate(server, deadline_ms=10_000_000)
    assert backend.submissions[0][1]["deadline"] == pytest.approx(30.0)


def test_translate_top_k_truncates_programs(fake_server):
    _, server = fake_server
    resp = _translate(server, top_k=1)
    assert resp.json()["result"]["programs"] == [["Sum(hours)", 0.9]]


def test_translate_degraded_is_206(make_server):
    backend = FakeBackend(
        responder=lambda s, **kw: make_result(tier="reduced", degraded=True)
    )
    server = make_server(backend)
    resp = _translate(server)
    assert resp.status == 206
    assert resp.json()["result"]["degraded"] is True


def test_translate_anytime_is_206(make_server):
    backend = FakeBackend(
        responder=lambda s, **kw: make_result(degraded=True, anytime=True)
    )
    server = make_server(backend)
    assert _translate(server).status == 206


# -- /translate error mapping --------------------------------------------------------


def _error_backend(code, message="scripted failure"):
    return FakeBackend(
        responder=lambda s, **kw: make_result(
            ok=False, error_code=code, error=message, tier=None,
            programs=[], n_candidates=0, top_formula=None,
        )
    )


@pytest.mark.parametrize("code", sorted(RETRYABLE_CODES))
def test_retryable_codes_are_503_with_retry_after(make_server, code):
    server = make_server(_error_backend(code))
    resp = _translate(server)
    assert resp.status == 503
    assert resp.headers["retry-after"] == "1"
    assert resp.json()["result"]["error_code"] == code


@pytest.mark.parametrize("code", sorted(INPUT_CODES))
def test_input_rejections_are_400(make_server, code):
    server = make_server(_error_backend(code))
    resp = _translate(server)
    assert resp.status == 400
    assert resp.json()["result"]["error_code"] == code


def test_deadline_exhausted_is_206_partial(make_server):
    server = make_server(_error_backend("deadline_exhausted"))
    resp = _translate(server)
    assert resp.status == 206
    assert resp.json()["result"]["ok"] is False


def test_worker_crashed_is_502(make_server):
    assert _translate(make_server(_error_backend("worker_crashed"))).status == 502


def test_worker_timeout_is_504(make_server):
    assert _translate(make_server(_error_backend("worker_timeout"))).status == 504


def test_unknown_error_code_is_500(make_server):
    assert _translate(make_server(_error_backend("internal_error"))).status == 500


def test_submit_exception_is_500(make_server):
    class Exploding(FakeBackend):
        def submit(self, sentence, **kwargs):
            raise RuntimeError("boom")

    server = make_server(Exploding())
    resp = _translate(server)
    assert resp.status == 500
    assert resp.json()["error_code"] == "internal_error"


def test_status_for_table():
    assert status_for(True, None, False, False) == 200
    assert status_for(True, None, True, False) == 206
    assert status_for(True, None, True, True) == 206
    assert status_for(False, "deadline_exhausted", True, False) == 206
    assert status_for(False, "shed_overload", False, False) == 503
    assert status_for(False, "circuit_open", False, False) == 503
    assert status_for(False, "empty_description", False, False) == 400
    assert status_for(False, "worker_crashed", True, False) == 502
    assert status_for(False, "worker_timeout", True, False) == 504
    assert status_for(False, "gateway_error", False, False) == 500
    assert status_for(False, "cancelled", False, False) == 500


# -- request-body validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "body",
    [
        {"stream": True},  # no sentence
        {"sentence": 7},
        {"sentence": "x", "deadline_ms": "fast"},
        {"sentence": "x", "deadline_ms": -5},
        {"sentence": "x", "deadline_ms": True},
        {"sentence": "x", "stream": "yes"},
        {"sentence": "x", "top_k": 0},
        {"sentence": "x", "top_k": 9999},
        {"sentence": "x", "faults": 3},
    ],
)
def test_invalid_translate_body_is_400(fake_server, body):
    backend, server = fake_server
    resp = http_request(server.port, "POST", "/translate", body=body)
    assert resp.status == 400
    assert resp.json()["error_code"] == "bad_request"
    assert backend.submissions == []


def test_non_object_json_body_is_400(fake_server):
    _, server = fake_server
    resp = http_request(server.port, "POST", "/translate", body=b"[1,2]")
    assert resp.status == 400


def test_keep_alive_serves_sequential_requests(fake_server):
    import socket as socketlib

    _, server = fake_server
    payload = json.dumps({"sentence": "sum the hours"}).encode()
    raw = (
        b"POST /translate HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
    )
    with socketlib.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
        with sock.makefile("rb") as reader:
            from .conftest import read_response

            sock.sendall(raw)
            first = read_response(reader)
            sock.sendall(raw)
            second = read_response(reader)
    assert first.status == second.status == 200
    assert first.headers["connection"] == "keep-alive"
