"""Disconnected HTTP clients release their gateway queue slots.

The regression (docs/HTTP.md): a waiter abandoned by its HTTP client
used to hold its bounded-queue slot until a worker served it into the
void — a trickle of hang-ups could brown out the gateway.  Now the
server's disconnect watch calls :meth:`PendingResult.cancel`, which
withdraws queued requests immediately.
"""

from __future__ import annotations

import json
import socket

from repro.serve import TranslationGateway

from ..conftest import make_payroll
from ..serve.waiters import wait_until
from .conftest import FakeBackend, http_request


def post_and_hang_up(port: int, body: dict) -> None:
    """Send a complete request, read nothing, slam the connection."""
    payload = json.dumps(body).encode()
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(
            b"POST /translate HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            % (len(payload), payload)
        )
    # with-block exit closes the socket: the server sees EOF.


def test_disconnect_cancels_held_backend_request(make_server):
    backend = FakeBackend(hold=True)
    server = make_server(backend)
    post_and_hang_up(server.port, {"sentence": "sum the hours"})
    wait_until(
        lambda: backend.cancelled == ["sum the hours"],
        message="disconnect never cancelled the pending request",
    )
    assert backend.snapshot()["held"] == 0
    cancelled = backend.metrics.counter("http_cancelled_total")
    wait_until(lambda: cancelled.total() >= 1.0)


def test_connected_clients_are_never_cancelled(make_server):
    backend = FakeBackend(hold=True)
    server = make_server(backend)
    import threading

    responses = []

    def call():
        responses.append(
            http_request(
                server.port, "POST", "/translate",
                body={"sentence": "count the employees"}, timeout=30,
            )
        )

    t = threading.Thread(target=call)
    t.start()
    wait_until(lambda: backend.snapshot()["held"] == 1)
    backend.release()
    t.join(10)
    assert backend.cancelled == []
    assert responses[0].status == 200


def test_disconnect_frees_real_gateway_queue_slot(make_server):
    """End-to-end over a real gateway: pin the worker, queue a request,
    hang up on it — the freed slot must admit a replacement instead of
    shedding."""
    workbook = make_payroll()
    gateway = TranslationGateway(
        workbook, workers=1, queue_limit=1,
        restart_backoff=0.01, restart_backoff_cap=0.1,
    )
    try:
        server = make_server(gateway)
        # Pin the single worker with a delayed request (not via HTTP so
        # nothing else occupies a connection).
        gateway.submit("sum the hours", faults="tokenize:delay:2.0")
        wait_until(lambda: gateway.stats().in_flight >= 1)
        # Fill the single queue slot over HTTP, then hang up.
        post_and_hang_up(server.port, {"sentence": "count the employees"})
        wait_until(
            lambda: gateway.stats().cancelled >= 1,
            message="gateway never recorded the cancel",
        )
        # The slot is free: this request is admitted, not shed.
        resp = http_request(
            server.port, "POST", "/translate",
            body={"sentence": "average the rate"}, timeout=60,
        )
        assert resp.json()["result"]["error_code"] != "shed_overload"
        assert resp.status in (200, 206)
    finally:
        gateway.close(drain=False)
