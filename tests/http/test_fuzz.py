"""Malformed-input fuzzing at the socket layer.

Everything here attacks a live server over TCP: truncated bodies
(half-close mid-upload), slowloris writers, oversized headers, garbage
bytes, and randomised structural corruption.  The invariant under test
is singular: **every connection ends with either a well-formed coded
HTTP response or a clean close — never a hang, never a traceback-closed
socket.**
"""

from __future__ import annotations

import json
import random
import socket
import time

import pytest

from repro.http.protocol import Limits

from .conftest import FakeBackend, read_response


@pytest.fixture
def tight_server(make_server):
    """A server with small limits so abuse trips fast."""
    backend = FakeBackend()
    server = make_server(
        backend,
        limits=Limits(
            max_request_line=256,
            max_header_bytes=1024,
            max_headers=16,
            max_body_bytes=2048,
            header_timeout=0.5,
            body_timeout=0.5,
            keep_alive_timeout=1.0,
        ),
    )
    return backend, server


def raw_exchange(port: int, payload: bytes, *, shut_wr: bool = False):
    """Send bytes, optionally half-close, then read one response."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(payload)
        if shut_wr:
            sock.shutdown(socket.SHUT_WR)
        with sock.makefile("rb") as reader:
            return read_response(reader)


def test_truncated_body_half_close_is_400(tight_server):
    backend, server = tight_server
    resp = raw_exchange(
        server.port,
        b"POST /translate HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"sen",
        shut_wr=True,
    )
    assert resp.status == 400
    assert resp.json()["error_code"] == "bad_request"
    assert backend.submissions == []


def test_bad_json_body_is_400(tight_server):
    _, server = tight_server
    body = b'{"sentence": "sum the hours'  # unterminated
    resp = raw_exchange(
        server.port,
        b"POST /translate HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
        % (len(body), body),
    )
    assert resp.status == 400
    assert resp.json()["error_code"] == "bad_request"


def test_non_utf8_body_is_400(tight_server):
    _, server = tight_server
    body = b"\xff\xfe\x00bad"
    resp = raw_exchange(
        server.port,
        b"POST /translate HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
        % (len(body), body),
    )
    assert resp.status == 400


def test_oversized_headers_over_wire_is_431(tight_server):
    _, server = tight_server
    headers = b"".join(
        b"X-Pad-%d: %s\r\n" % (i, b"y" * 100) for i in range(20)
    )
    resp = raw_exchange(
        server.port, b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n"
    )
    assert resp.status == 431


def test_oversized_body_over_wire_is_413(tight_server):
    _, server = tight_server
    resp = raw_exchange(
        server.port,
        b"POST /translate HTTP/1.1\r\nContent-Length: 100000\r\n\r\n",
    )
    assert resp.status == 413


def test_slowloris_headers_cut_off_with_408(tight_server):
    """Trickling one header byte at a time must hit the header budget."""
    _, server = tight_server
    with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
        sock.sendall(b"GET /healthz HTTP/1.1\r\nX-Slow: ")
        start = time.monotonic()
        resp = None
        try:
            for _ in range(100):
                sock.sendall(b"z")
                time.sleep(0.05)
        except (BrokenPipeError, ConnectionResetError):
            pass  # server already gave up on us — also acceptable
        try:
            with sock.makefile("rb") as reader:
                resp = read_response(reader)
        except (ConnectionError, OSError):
            resp = None
    elapsed = time.monotonic() - start
    # The 0.5 s header budget must have fired long before the 5 s trickle.
    assert elapsed < 4.0
    if resp is not None:
        assert resp.status == 408


def test_slowloris_body_cut_off_with_408(tight_server):
    _, server = tight_server
    with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
        sock.sendall(
            b"POST /translate HTTP/1.1\r\nContent-Length: 2000\r\n\r\n"
        )
        try:
            for _ in range(100):
                sock.sendall(b"x")
                time.sleep(0.05)
        except (BrokenPipeError, ConnectionResetError):
            pass
        try:
            with sock.makefile("rb") as reader:
                resp = read_response(reader)
        except (ConnectionError, OSError):
            resp = None
    if resp is not None:
        assert resp.status == 408


def test_garbage_bytes_get_coded_response(tight_server):
    _, server = tight_server
    resp = raw_exchange(server.port, b"\x01\x02garbage\r\n\r\n")
    assert resp.status in (400, 414, 431)


def test_immediate_close_is_harmless(tight_server):
    _, server = tight_server
    for _ in range(5):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        sock.close()
    # The server must still answer afterwards.
    resp = raw_exchange(server.port, b"GET /healthz HTTP/1.1\r\n\r\n")
    assert resp.status == 200


def test_randomised_corruption_never_hangs(tight_server):
    """Structured fuzz: mutate a valid request 40 ways; every connection
    must resolve (response or clean close) within the socket timeout."""
    _, server = tight_server
    rng = random.Random(0xF00D)
    body = json.dumps({"sentence": "sum the hours"}).encode()
    base = (
        b"POST /translate HTTP/1.1\r\nHost: fuzz\r\nContent-Length: %d\r\n\r\n%s"
        % (len(body), body)
    )
    outcomes = []
    for _ in range(40):
        data = bytearray(base)
        for _ in range(rng.randrange(1, 6)):
            op = rng.randrange(3)
            pos = rng.randrange(len(data))
            if op == 0:
                data[pos] = rng.randrange(256)
            elif op == 1 and len(data) > 1:
                del data[pos]
            else:
                data.insert(pos, rng.randrange(256))
        try:
            resp = raw_exchange(server.port, bytes(data), shut_wr=True)
            outcomes.append(resp.status)
        except (ConnectionError, OSError, ValueError):
            outcomes.append(None)  # clean close with no response: fine
    # Liveness after the storm — and at least some mutants got replies.
    assert raw_exchange(
        server.port, b"GET /healthz HTTP/1.1\r\n\r\n"
    ).status == 200
    assert any(status is not None for status in outcomes)
