"""Unit tests for the HTTP/1.1 parser: limits, timeouts, edge cases.

These drive :func:`repro.http.protocol.read_request` directly over an
in-memory ``StreamReader`` — no sockets — so every malformed input maps
deterministically to its :class:`ProtocolError` status and code.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.http.protocol import (
    CHUNK_TERMINATOR,
    BufferedConnection,
    Limits,
    ProtocolError,
    encode_chunk,
    read_request,
    render_response,
    start_response,
)


def parse(data: bytes, limits: Limits | None = None, feed_eof: bool = True):
    """Run read_request over literal bytes; returns Request or raises."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if feed_eof:
            reader.feed_eof()
        return await read_request(
            BufferedConnection(reader), limits or Limits()
        )

    return asyncio.run(main())


def parse_error(data: bytes, limits: Limits | None = None) -> ProtocolError:
    with pytest.raises(ProtocolError) as info:
        parse(data, limits)
    return info.value


# -- well-formed requests ------------------------------------------------------------


def test_simple_get():
    req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
    assert req.method == "GET"
    assert req.path == "/healthz"
    assert req.version == "HTTP/1.1"
    assert req.headers == {"host": "x"}
    assert req.body == b""
    assert req.keep_alive


def test_post_with_body_and_query():
    req = parse(
        b"POST /translate?limit=3&debug= HTTP/1.1\r\n"
        b"Content-Length: 4\r\n\r\nabcd"
    )
    assert req.body == b"abcd"
    assert req.query == {"limit": "3", "debug": ""}


def test_header_names_lowercased_values_trimmed():
    req = parse(b"GET / HTTP/1.1\r\nX-Thing:   padded   \r\n\r\n")
    assert req.headers["x-thing"] == "padded"


def test_percent_encoded_path_decoded():
    req = parse(b"GET /a%20b HTTP/1.1\r\n\r\n")
    assert req.path == "/a b"


def test_bare_lf_line_endings_tolerated():
    req = parse(b"GET / HTTP/1.1\nHost: x\n\n")
    assert req.headers == {"host": "x"}


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_connection_close_disables_keep_alive():
    req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not req.keep_alive


def test_http10_defaults_to_close():
    assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
    assert parse(
        b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
    ).keep_alive


def test_pipelined_second_request_stays_buffered():
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
        )
        reader.feed_eof()
        conn = BufferedConnection(reader)
        first = await read_request(conn, Limits())
        second = await read_request(conn, Limits())
        third = await read_request(conn, Limits())
        return first, second, third

    first, second, third = asyncio.run(main())
    assert (first.path, second.path, third) == ("/a", "/b", None)


# -- malformed and abusive inputs ----------------------------------------------------


def test_garbage_request_line_is_400():
    err = parse_error(b"NOT A REQUEST LINE AT ALL\r\n\r\n")
    assert (err.status, err.code) == (400, "bad_request")


def test_unsupported_version_is_400():
    assert parse_error(b"GET / HTTP/2\r\n\r\n").status == 400


def test_non_ascii_request_line_is_400():
    assert parse_error("GET /café HTTP/1.1\r\n\r\n".encode()).status == 400


def test_overlong_request_line_is_414():
    limits = Limits(max_request_line=64)
    err = parse_error(b"GET /" + b"a" * 200 + b" HTTP/1.1\r\n\r\n", limits)
    assert err.status == 414
    assert err.code in ("uri_too_long", "limit_exceeded")


def test_oversized_header_block_is_431():
    limits = Limits(max_header_bytes=128)
    data = b"GET / HTTP/1.1\r\n" + b"X-Pad: " + b"y" * 200 + b"\r\n\r\n"
    assert parse_error(data, limits).status == 431


def test_too_many_headers_is_431():
    limits = Limits(max_headers=4)
    headers = b"".join(b"X-%d: v\r\n" % i for i in range(10))
    err = parse_error(b"GET / HTTP/1.1\r\n" + headers + b"\r\n", limits)
    assert (err.status, err.code) == (431, "limit_exceeded")


def test_malformed_header_line_is_400():
    assert parse_error(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").status == 400


def test_header_with_leading_space_is_400():
    # Obsolete line folding is an attack vector; reject outright.
    err = parse_error(b"GET / HTTP/1.1\r\nA: b\r\n  folded\r\n\r\n")
    assert err.status == 400


def test_bad_content_length_is_400():
    assert parse_error(
        b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
    ).status == 400
    assert parse_error(
        b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"
    ).status == 400


def test_oversized_body_is_413():
    limits = Limits(max_body_bytes=8)
    err = parse_error(
        b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789", limits
    )
    assert (err.status, err.code) == (413, "limit_exceeded")


def test_chunked_request_body_is_501():
    err = parse_error(
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    )
    assert (err.status, err.code) == (501, "not_implemented")


def test_truncated_body_is_400():
    err = parse_error(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
    assert (err.status, err.code) == (400, "bad_request")


def test_truncated_headers_is_400():
    assert parse_error(b"GET / HTTP/1.1\r\nHost: x").status == 400


def test_slow_header_writer_is_408():
    """A peer trickling headers slower than header_timeout gets 408."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(b"GET / HTTP/1.1\r\nX-Slow: ")
        conn = BufferedConnection(reader)
        limits = Limits(header_timeout=0.05)
        with pytest.raises(ProtocolError) as info:
            await read_request(conn, limits)
        return info.value

    err = asyncio.run(main())
    assert (err.status, err.code) == (408, "header_timeout")


def test_slow_body_writer_is_408():
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
        conn = BufferedConnection(reader)
        limits = Limits(body_timeout=0.05)
        with pytest.raises(ProtocolError) as info:
            await read_request(conn, limits)
        return info.value

    err = asyncio.run(main())
    assert (err.status, err.code) == (408, "body_timeout")


def test_idle_timeout_raises_asyncio_timeout():
    async def main():
        reader = asyncio.StreamReader()  # never fed
        conn = BufferedConnection(reader)
        with pytest.raises(asyncio.TimeoutError):
            await read_request(conn, Limits(), idle_timeout=0.05)

    asyncio.run(main())


# -- response rendering --------------------------------------------------------------


def test_render_response_roundtrip():
    raw = render_response(200, b'{"a":1}')
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK\r\n")
    assert b"Content-Length: 7" in head
    assert b"Connection: keep-alive" in head
    assert body == b'{"a":1}'


def test_render_response_close_and_extras():
    raw = render_response(
        503, b"{}", keep_alive=False, extra_headers=[("Retry-After", "2")]
    )
    assert b"HTTP/1.1 503 Service Unavailable" in raw
    assert b"Connection: close" in raw
    assert b"Retry-After: 2" in raw


def test_chunked_framing():
    head = start_response(200)
    assert b"Transfer-Encoding: chunked" in head
    assert b"Connection: close" in head
    assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
    assert encode_chunk(b"") == b""
    assert CHUNK_TERMINATOR == b"0\r\n\r\n"


def test_pushback_read_any_roundtrip():
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(b"xyz")
        conn = BufferedConnection(reader)
        first = await conn.read_any()
        conn.pushback(first)
        return await conn.read_any()

    assert asyncio.run(main()) == b"xyz"
