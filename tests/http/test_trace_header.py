"""Trace propagation over HTTP: the ``X-Repro-Trace-Id`` contract.

A well-formed incoming header becomes the request's trace id end to end
and is echoed on the response; ``/translate`` mints a fresh id when the
client sent none (so every translation is traceable); a malformed header
is *replaced*, never echoed, so a hostile client cannot forge log lines
or smuggle bytes into the Prometheus exemplar export.
"""

from __future__ import annotations

import re

from repro.http.server import TRACE_HEADER

from .conftest import FakeBackend, http_request
from .test_streaming import scripted_server

_HEADER = TRACE_HEADER.lower()
_ID_SHAPE = re.compile(r"^[0-9a-zA-Z_-]{1,128}$")


def _translate(server, headers=None, **extra):
    body = {"sentence": "sum the hours", **extra}
    return http_request(
        server.port, "POST", "/translate", body=body, headers=headers
    )


# -- /translate ----------------------------------------------------------------------


def test_translate_mints_trace_id_when_absent(fake_server):
    backend, server = fake_server
    resp = _translate(server)
    trace_id = resp.headers.get(_HEADER)
    assert trace_id is not None and _ID_SHAPE.match(trace_id)
    assert resp.json()["trace_id"] == trace_id
    assert backend.trace_ids == [trace_id]


def test_translate_honours_incoming_trace_id(fake_server):
    backend, server = fake_server
    resp = _translate(server, headers={TRACE_HEADER: "client-id-42"})
    assert resp.headers[_HEADER] == "client-id-42"
    assert resp.json()["trace_id"] == "client-id-42"
    assert backend.trace_ids == ["client-id-42"]


def test_translate_distinct_requests_get_distinct_ids(fake_server):
    _, server = fake_server
    first = _translate(server).headers[_HEADER]
    second = _translate(server).headers[_HEADER]
    assert first != second


def test_malformed_trace_id_is_replaced_not_echoed(fake_server):
    backend, server = fake_server
    hostile = 'x" } forged{exemplar}'
    resp = _translate(server, headers={TRACE_HEADER: hostile})
    minted = resp.headers[_HEADER]
    assert minted != hostile and _ID_SHAPE.match(minted)
    assert backend.trace_ids == [minted]


def test_oversized_trace_id_is_replaced(fake_server):
    _, server = fake_server
    resp = _translate(server, headers={TRACE_HEADER: "a" * 129})
    assert resp.headers[_HEADER] != "a" * 129


def test_trace_id_on_error_responses(fake_server):
    _, server = fake_server
    resp = http_request(
        server.port, "POST", "/translate",
        body={"sentence": 7},
        headers={TRACE_HEADER: "bad-req-id"},
    )
    assert resp.status == 400
    assert resp.headers[_HEADER] == "bad-req-id"


def test_backend_without_trace_id_param_still_echoes(make_server):
    class LegacyBackend(FakeBackend):
        def submit(self, sentence, *, deadline=None, faults=None):
            kwargs = {}
            if deadline is not None:
                kwargs["deadline"] = deadline
            if faults is not None:
                kwargs["faults"] = faults
            return super().submit(sentence, **kwargs)

    backend = LegacyBackend()
    server = make_server(backend)
    resp = _translate(server, headers={TRACE_HEADER: "legacy-1"})
    assert resp.status == 200
    assert resp.headers[_HEADER] == "legacy-1"
    # The legacy submit never saw the keyword, and nothing blew up.
    assert backend.trace_ids == [None]


# -- other endpoints: echo-only ------------------------------------------------------


def test_get_endpoints_echo_valid_incoming_id(fake_server):
    _, server = fake_server
    for path in ("/healthz", "/metrics", "/stats"):
        resp = http_request(
            server.port, "GET", path, headers={TRACE_HEADER: "probe-7"}
        )
        assert resp.headers.get(_HEADER) == "probe-7", path


def test_get_endpoints_do_not_mint_ids(fake_server):
    _, server = fake_server
    resp = http_request(server.port, "GET", "/healthz")
    assert _HEADER not in resp.headers


def test_not_found_echoes_trace_id(fake_server):
    _, server = fake_server
    resp = http_request(
        server.port, "GET", "/nope", headers={TRACE_HEADER: "lost-1"}
    )
    assert resp.status == 404
    assert resp.headers[_HEADER] == "lost-1"


# -- streaming -----------------------------------------------------------------------


def test_stream_echoes_trace_id_on_head_and_final(make_server):
    _, server = scripted_server(make_server)
    resp = http_request(
        server.port, "POST", "/translate",
        body={"sentence": "s", "stream": True},
        headers={TRACE_HEADER: "stream-id-1"},
    )
    assert resp.headers[_HEADER] == "stream-id-1"
    final = resp.ndjson()[-1]
    assert final["event"] == "final"
    assert final["trace_id"] == "stream-id-1"


def test_stream_mints_trace_id_when_absent(make_server):
    _, server = scripted_server(make_server)
    resp = http_request(
        server.port, "POST", "/translate",
        body={"sentence": "s", "stream": True},
    )
    trace_id = resp.headers.get(_HEADER)
    assert trace_id is not None and _ID_SHAPE.match(trace_id)
    assert resp.ndjson()[-1]["trace_id"] == trace_id
