"""Harness for the HTTP suites: thread-hosted server, raw-socket client.

Tests talk to a real TCP socket — no test client shims — because the
protocol hardening under test (truncated bodies, slowloris writes,
half-closed connections) only exists at the socket layer.  The backend,
by contrast, is usually a :class:`FakeBackend`: endpoint and error-code
conformance is about the mapping, not about real translation (the
differential and chaos suites cover the real stack).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from dataclasses import dataclass, field

import pytest

from repro.http import HttpServer
from repro.obs import MetricsRegistry
from repro.serve.gateway import GatewayResult, PendingResult

from ..conftest import make_payroll

__all__ = [
    "FakeBackend",
    "HttpResponse",
    "ServerThread",
    "http_request",
    "make_result",
    "read_response",
]


def make_result(**overrides) -> GatewayResult:
    """A plausible successful gateway result, field-overridable."""
    base = dict(
        ok=True,
        tier="full",
        programs=[("Sum(hours)", 0.9), ("Count(hours)", 0.4)],
        n_candidates=2,
        top_formula="=SUM(D2:D7)",
        elapsed=0.01,
        queue_seconds=0.001,
        total_seconds=0.011,
        worker_id=0,
        fingerprint="f" * 12,
    )
    base.update(overrides)
    return GatewayResult(**base)


class FakeBackend:
    """A scriptable ``submit()`` seam with the gateway's future semantics.

    ``responder(sentence, **kwargs)`` builds each result.  With
    ``hold=True`` futures stay pending until :meth:`release` — that is
    how the disconnect/cancel tests freeze a request mid-flight.
    """

    def __init__(self, responder=None, workbook=None, hold: bool = False):
        self.metrics = MetricsRegistry()
        self.default_workbook = workbook
        self.responder = responder or (lambda sentence, **kw: make_result())
        self.hold = hold
        self.submissions: list[tuple[str, dict]] = []
        self.trace_ids: list[str | None] = []  # one per submission, in order
        self.pending: list[tuple[PendingResult, str, dict]] = []
        self.cancelled: list[str] = []
        self._lock = threading.Lock()

    def submit(self, sentence: str, **kwargs) -> PendingResult:
        # The server always propagates a trace id; record it on the side
        # so golden assertions over the translation kwargs stay exact.
        trace_id = kwargs.pop("trace_id", None)
        pending = PendingResult()
        pending._canceller = lambda: self._cancel(pending, sentence)
        with self._lock:
            self.submissions.append((sentence, kwargs))
            self.trace_ids.append(trace_id)
            if self.hold:
                self.pending.append((pending, sentence, kwargs))
        if not self.hold:
            pending._resolve(self.responder(sentence, **kwargs))
        return pending

    def _cancel(self, pending: PendingResult, sentence: str) -> bool:
        with self._lock:
            for i, (p, _, _) in enumerate(self.pending):
                if p is pending:
                    del self.pending[i]
                    break
            else:
                return False
            self.cancelled.append(sentence)
        pending._resolve(
            GatewayResult(
                ok=False, error_code="cancelled",
                error="cancelled by the caller before dispatch",
            )
        )
        return True

    def release(self) -> int:
        """Resolve every held future; returns how many."""
        with self._lock:
            held, self.pending = self.pending, []
        for pending, sentence, kwargs in held:
            pending._resolve(self.responder(sentence, **kwargs))
        return len(held)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "submitted": len(self.submissions),
                "held": len(self.pending),
                "cancelled": len(self.cancelled),
            }


class ServerThread:
    """Host one :class:`HttpServer` on a private event-loop thread."""

    def __init__(self, backend, **kwargs) -> None:
        self._backend = backend
        self._kwargs = kwargs
        self._started = threading.Event()
        self._failure: BaseException | None = None
        self.server: HttpServer | None = None
        self._thread = threading.Thread(
            target=self._run, name="http-server", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            server = HttpServer(self._backend, **self._kwargs)
            await server.start()
            self.server = server
            self._started.set()
            await server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - harness failure
            self._failure = exc
            self._started.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(10), "server did not start"
        if self._failure is not None:
            raise self._failure
        return self

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def stop(self) -> None:
        if self.server is not None:
            self.server.request_stop()
        self._thread.join(10)


@dataclass
class HttpResponse:
    status: int
    reason: str
    headers: dict[str, str]
    body: bytes
    chunked: bool = False
    terminated: bool = False  # chunked stream ended with the 0-chunk
    chunks: list[bytes] = field(default_factory=list)

    def json(self):
        return json.loads(self.body)

    def ndjson(self) -> list[dict]:
        return [
            json.loads(line)
            for line in self.body.decode("utf-8").splitlines()
            if line
        ]


def read_response(reader, timeout: float = 10.0) -> HttpResponse:
    """Parse one HTTP/1.1 response off a socket file object."""
    status_line = reader.readline()
    if not status_line:
        raise ConnectionError("no status line (connection closed)")
    status, reason = _split_status(status_line)
    headers: dict[str, str] = {}
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    chunked = headers.get("transfer-encoding", "").lower() == "chunked"
    if chunked:
        chunks: list[bytes] = []
        terminated = False
        while True:
            size_line = reader.readline()
            if not size_line:
                break  # truncated stream: terminated stays False
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                reader.readline()  # trailing CRLF
                terminated = True
                break
            data = reader.read(size)
            reader.read(2)  # CRLF
            chunks.append(data)
        return HttpResponse(
            status=status, reason=reason, headers=headers,
            body=b"".join(chunks), chunked=True,
            terminated=terminated, chunks=chunks,
        )
    length = headers.get("content-length")
    if length is not None:
        body = reader.read(int(length))
    else:
        body = reader.read()
    return HttpResponse(
        status=status, reason=reason, headers=headers, body=body
    )


def _split_status(status_line: bytes) -> tuple[int, str]:
    parts = status_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
    return int(parts[1]), parts[2] if len(parts) > 2 else ""


def http_request(
    port: int,
    method: str,
    path: str,
    body: bytes | str | dict | None = None,
    headers: dict[str, str] | None = None,
    timeout: float = 10.0,
    host: str = "127.0.0.1",
) -> HttpResponse:
    """One request over a fresh socket; returns the parsed response."""
    if isinstance(body, dict):
        body = json.dumps(body).encode("utf-8")
    elif isinstance(body, str):
        body = body.encode("utf-8")
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if body is not None and "content-length" not in {
        k.lower() for k in (headers or {})
    }:
        lines.append(f"Content-Length: {len(body)}")
    raw = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b"")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(raw)
        with sock.makefile("rb") as reader:
            return read_response(reader, timeout)


@pytest.fixture
def payroll_workbook():
    return make_payroll()


@pytest.fixture
def make_server():
    """Factory fixture: ``make_server(backend, **server_kwargs)``."""
    servers: list[ServerThread] = []

    def _make(backend, **kwargs) -> ServerThread:
        server = ServerThread(backend, **kwargs).start()
        servers.append(server)
        return server

    yield _make
    for server in servers:
        server.stop()


@pytest.fixture
def fake_server(make_server):
    """A server over a plain always-succeeding FakeBackend."""
    backend = FakeBackend()
    server = make_server(backend)
    return backend, server
