"""The streaming protocol: monotone updates, terminator, byte-identity.

The deterministic tests drive a *scripted* service through the real
:class:`ServiceStreamer`/:class:`HttpServer` stack, so chunk framing and
ordering are asserted without translation noise; the integration test at
the end runs real translation and proves the streamed final record is
byte-identical to a direct in-process ``TranslationService`` call.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.http import AnytimeEmitter, ServiceStreamer, result_payload
from repro.obs.clock import ManualClock
from repro.runtime.service import ServiceResult, TranslationService
from ..serve.waiters import wait_until

from .conftest import FakeBackend, http_request, read_response


class FakeCandidate:
    """Just enough surface for ranking payloads: program, score, excel."""

    def __init__(self, program: str, score: float) -> None:
        self.program = program
        self.score = score

    def excel(self, workbook) -> str:
        return f"={self.program}"


def cands(*pairs) -> list[FakeCandidate]:
    return [FakeCandidate(p, s) for p, s in pairs]


def final_result(candidates, *, anytime=False, tier="full") -> ServiceResult:
    return ServiceResult(
        candidates=candidates,
        tier=tier,
        degraded=anytime,
        anytime=anytime,
        elapsed=0.5,
        budget_spent=123,
    )


class ScriptedService:
    """Replays a fixed on_update script, then returns a fixed result."""

    def __init__(self, updates, final: ServiceResult) -> None:
        self.updates = updates
        self.final = final
        self.workbook = object()
        self.calls: list[tuple[str, float | None]] = []
        self.gate: threading.Event | None = None  # pause before update #2

    def translate(self, sentence, tracer=None, *, deadline=None, on_update=None):
        self.calls.append((sentence, deadline))
        for i, (tier, candidates) in enumerate(self.updates):
            if self.gate is not None and i == 1:
                self.gate.wait(10)
            if on_update is not None:
                on_update(tier, candidates)
        return self.final


# -- the monotone gate ---------------------------------------------------------------


def test_emitter_emits_only_strict_improvements():
    emitter = AnytimeEmitter(top_k=5)
    a = emitter.offer("full", cands(("A", 0.3)))
    b = emitter.offer("full", cands(("A", 0.3)))  # identical: suppressed
    c = emitter.offer("full", cands(("B", 0.2)))  # worse: suppressed
    d = emitter.offer("full", cands(("C", 0.4)))  # better top-1
    e = emitter.offer("full", cands(("C", 0.4), ("D", 0.1)))  # longer tail
    assert a is not None and a["seq"] == 1
    assert b is None and c is None
    assert d is not None and d["seq"] == 2
    assert e is not None and e["seq"] == 3
    assert emitter.updates == 3


def test_emitter_skips_empty_rankings():
    emitter = AnytimeEmitter(top_k=5)
    assert emitter.offer("full", []) is None
    assert emitter.updates == 0


def test_emitter_truncates_programs_to_top_k():
    emitter = AnytimeEmitter(top_k=2)
    record = emitter.offer(
        "full", cands(("A", 0.9), ("B", 0.5), ("C", 0.1))
    )
    assert record["programs"] == [["A", 0.9], ["B", 0.5]]
    assert record["n_candidates"] == 3
    assert record["top_score"] == 0.9


def test_emitter_monotone_across_tiers():
    emitter = AnytimeEmitter(top_k=5)
    assert emitter.offer("full", cands(("A", 0.5))) is not None
    assert emitter.offer("reduced", cands(("A", 0.4))) is None
    assert emitter.offer("reduced", cands(("B", 0.6))) is not None


# -- scripted end-to-end streams -----------------------------------------------------


SCRIPT = [
    ("full", cands(("A", 0.2))),
    ("full", cands(("A", 0.2))),              # duplicate: suppressed
    ("full", cands(("B", 0.5))),
    ("full", cands(("B", 0.4))),              # regression: suppressed
    ("full", cands(("B", 0.5), ("C", 0.3))),  # extended tail
]
FINAL = final_result(cands(("B", 0.5), ("C", 0.3)))


def scripted_server(make_server, script=SCRIPT, final=FINAL, **server_kw):
    service = ScriptedService(script, final)
    streamer = ServiceStreamer(service=service)
    server = make_server(FakeBackend(), streamer=streamer, **server_kw)
    return service, server


def stream(server, body):
    return http_request(server.port, "POST", "/translate", body=body)


def test_stream_chunk_framing_and_terminator(make_server):
    _, server = scripted_server(make_server)
    resp = stream(server, {"sentence": "s", "stream": True})
    assert resp.status == 200
    assert resp.chunked and resp.terminated
    assert resp.headers["content-type"] == "application/x-ndjson"
    assert resp.headers["connection"] == "close"
    # One record per chunk, each newline-terminated.
    assert all(chunk.endswith(b"\n") for chunk in resp.chunks)
    records = resp.ndjson()
    assert [r["event"] for r in records] == [
        "update", "update", "update", "final"
    ]


def test_stream_updates_are_monotonically_non_worsening(make_server):
    _, server = scripted_server(make_server)
    records = stream(server, {"sentence": "s", "stream": True}).ndjson()
    updates = [r for r in records if r["event"] == "update"]
    assert [u["seq"] for u in updates] == [1, 2, 3]
    keys = [tuple(score for _, score in u["programs"]) for u in updates]
    assert keys == sorted(keys), "a later chunk ranked worse than an earlier one"
    assert all(earlier < later for earlier, later in zip(keys, keys[1:]))


def test_stream_final_record_shape_and_identity(make_server):
    service, server = scripted_server(make_server)
    records = stream(
        server, {"sentence": "s", "stream": True, "deadline_ms": 5000}
    ).ndjson()
    final = records[-1]
    assert final["event"] == "final"
    assert final["status"] == 200
    assert final["updates"] == 3
    expected = result_payload(FINAL, service.workbook, 5)
    assert json.dumps(final["result"], sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )
    assert final["serving"]["streamed"] is True
    # The scripted deadline reached the service verbatim.
    assert service.calls == [("s", 5.0)]


def test_stream_with_injected_clock_reports_deterministic_timing(make_server):
    clock = ManualClock()
    _, server = scripted_server(make_server, clock=clock)
    final = stream(server, {"sentence": "s", "stream": True}).ndjson()[-1]
    # The server clock never advanced: serving time is exactly zero.
    assert final["serving"]["total_seconds"] == 0.0
    assert final["serving"]["elapsed"] == 0.5  # from the scripted result


def test_stream_anytime_final_maps_to_206(make_server):
    _, server = scripted_server(
        make_server,
        script=[("full", cands(("A", 0.2)))],
        final=final_result(cands(("A", 0.2)), anytime=True),
    )
    final = stream(server, {"sentence": "s", "stream": True}).ndjson()[-1]
    assert final["status"] == 206
    assert final["result"]["anytime"] is True


def test_stream_unbounded_requests_get_default_deadline(make_server):
    service, server = scripted_server(make_server)
    stream(server, {"sentence": "s", "stream": True})
    # No deadline_ms: the stream default applies (never unbounded).
    assert service.calls[0][1] == 10.0


def test_stream_without_streamer_is_501(make_server):
    server = make_server(FakeBackend())  # no workbook, no streamer
    resp = stream(server, {"sentence": "s", "stream": True})
    assert resp.status == 501
    assert resp.json()["error_code"] == "not_implemented"


def test_stream_service_exception_yields_error_record(make_server):
    class Exploding(ScriptedService):
        def translate(self, sentence, tracer=None, *, deadline=None, on_update=None):
            raise RuntimeError("boom")

    service = Exploding([], FINAL)
    streamer = ServiceStreamer(service=service)
    server = make_server(FakeBackend(), streamer=streamer)
    resp = stream(server, {"sentence": "s", "stream": True})
    assert resp.terminated
    records = resp.ndjson()
    assert records[-1]["event"] == "error"
    assert records[-1]["error_code"] == "internal_error"


def test_stream_client_disconnect_counts_and_recovers(make_server):
    service = ScriptedService(SCRIPT, FINAL)
    service.gate = threading.Event()
    streamer = ServiceStreamer(service=service)
    backend = FakeBackend()
    server = make_server(backend, streamer=streamer)
    body = json.dumps({"sentence": "s", "stream": True}).encode()
    with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
        sock.sendall(
            b"POST /translate HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            % (len(body), body)
        )
        sock.recv(4096)  # the status line + first chunk arrive
    # Socket closed mid-stream; let the scripted service finish.
    service.gate.set()
    disconnects = backend.metrics.counter("http_disconnects_total")
    wait_until(
        lambda: disconnects.value(endpoint="/translate") >= 1.0
        or disconnects.total() >= 1.0,
        timeout=10,
        message="disconnect never recorded",
    )
    # And the server still serves.
    assert http_request(server.port, "GET", "/healthz").status == 200


# -- real translation ----------------------------------------------------------------


def test_stream_final_matches_in_process_service(make_server, payroll_workbook):
    """The acceptance identity: the streamed final ``result`` object is
    byte-identical to a direct in-process TranslationService call."""
    sentence = "sum of hours where title is barista"
    streamer = ServiceStreamer(payroll_workbook)
    server = make_server(
        FakeBackend(workbook=payroll_workbook), streamer=streamer
    )
    resp = stream(
        server,
        {"sentence": sentence, "stream": True, "deadline_ms": 30_000},
    )
    records = resp.ndjson()
    assert resp.terminated
    final = records[-1]
    assert final["event"] == "final" and final["status"] == 200

    service = TranslationService(payroll_workbook)
    expected = result_payload(
        service.translate(sentence), payroll_workbook, 5
    )
    assert json.dumps(final["result"], sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )
    # Anytime updates streamed ahead of the final are monotone too.
    updates = [r for r in records if r["event"] == "update"]
    assert updates, "real translation produced no anytime updates"
    keys = [tuple(s for _, s in u["programs"]) for u in updates]
    assert all(a < b for a, b in zip(keys, keys[1:]))
    assert final["updates"] == len(updates)
