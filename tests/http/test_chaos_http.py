"""Chaos through the front door: SIGKILL workers under HTTP load.

The serving-stack guarantee, restated at the socket layer: with worker
processes dying underneath the gateway, **every HTTP connection still
receives a complete, well-formed response** — a parseable status line,
a coded JSON body, and for streams a chunked body that always ends with
the 0-chunk terminator.  No hung sockets, no half-written NDJSON.

``REPRO_CHAOS_REQUESTS`` scales the storm (default 120, ≥100 of them
concurrent).  ``REPRO_CHAOS_TRACE_DIR`` dumps the gateway span log as a
CI artifact, same contract as the gateway/cluster chaos lanes.
"""

from __future__ import annotations

import json
import os
import random
import threading

import pytest

from repro.obs import Tracer
from repro.obs.export import write_spans_jsonl
from repro.serve import TranslationGateway

from ..conftest import make_payroll
from ..serve.waiters import wait_until
from .conftest import http_request

N_REQUESTS = int(os.environ.get("REPRO_CHAOS_REQUESTS", "120"))
WORKERS = 3
ALLOWED_STATUSES = {200, 206, 502, 503, 504}
ALLOWED_CODES = {None, "worker_crashed", "worker_timeout", "shed_overload",
                 "circuit_open", "deadline_exhausted"}

SENTENCES = [
    "sum the hours",
    "count the employees",
    "sum the totalpay for the capitol hill baristas",
    "average the rate",
]

pytestmark = pytest.mark.slow


@pytest.fixture
def chaos_tracer(request):
    out_dir = os.environ.get("REPRO_CHAOS_TRACE_DIR")
    tracer = Tracer() if out_dir else None
    yield tracer
    if out_dir and tracer is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{request.node.name}.spans.jsonl")
        n = write_spans_jsonl(tracer, path)
        print(f"chaos trace: {n} spans -> {path}")


def test_worker_kills_under_http_load(make_server, chaos_tracer):
    workbook = make_payroll()
    gateway = TranslationGateway(
        workbook,
        workers=WORKERS,
        queue_limit=max(N_REQUESTS * 2, 256),
        breaker_threshold=10_000,  # chaos kills must not poison a workbook
        restart_backoff=0.01,
        restart_backoff_cap=0.1,
        tracer=chaos_tracer,
    )
    try:
        server = make_server(gateway, max_connections=N_REQUESTS * 2 + 16)
        rng = random.Random(0xC4A05)
        stop_killing = threading.Event()

        def killer():
            while not stop_killing.wait(rng.uniform(0.05, 0.25)):
                gateway.kill_worker(rng.randrange(WORKERS))

        chaos = threading.Thread(target=killer, name="chaos-killer", daemon=True)

        outcomes: list = [None] * N_REQUESTS
        barrier = threading.Barrier(N_REQUESTS + 1)

        def client(i: int) -> None:
            stream = i % 10 == 9  # every tenth request streams
            body = {"sentence": SENTENCES[i % len(SENTENCES)]}
            if stream:
                body["stream"] = True
                body["deadline_ms"] = 5000
            barrier.wait(timeout=60)
            try:
                resp = http_request(
                    server.port, "POST", "/translate", body=body, timeout=90
                )
                outcomes[i] = ("resp", stream, resp)
            except Exception as exc:  # noqa: BLE001 - recorded, then asserted
                outcomes[i] = ("exc", stream, exc)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(N_REQUESTS)
        ]
        for thread in threads:
            thread.start()
        chaos.start()
        barrier.wait(timeout=60)  # all clients connected: release the storm
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "an HTTP client hung"
        stop_killing.set()
        chaos.join(timeout=10)

        exceptions = [o for o in outcomes if o is not None and o[0] == "exc"]
        assert not exceptions, f"connections died uncoded: {exceptions[:3]}"
        assert all(o is not None for o in outcomes)

        for _, stream, resp in outcomes:
            assert resp.status in ALLOWED_STATUSES, resp.status
            if stream:
                # A stream is only well-formed if the terminator arrived.
                assert resp.terminated, "NDJSON stream without terminator"
                records = resp.ndjson()
                assert records[-1]["event"] in ("final", "error")
            else:
                body = resp.json()
                assert body["result"]["error_code"] in ALLOWED_CODES

        # The stack recovers: workers respawn and serve again.
        wait_until(
            lambda: not gateway.quarantined, timeout=30,
            message="gateway never recovered from the storm",
        )
        resp = http_request(
            server.port, "POST", "/translate",
            body={"sentence": "sum the hours"}, timeout=60,
        )
        assert resp.status in (200, 206)
    finally:
        gateway.close(drain=False)


def test_kill_mid_stream_still_terminates(make_server):
    """Streams are served in-process, so a dead worker pool must not be
    able to leave a stream unterminated — even with every worker down."""
    workbook = make_payroll()
    gateway = TranslationGateway(
        workbook, workers=1, restart_backoff=0.01, restart_backoff_cap=0.1
    )
    try:
        server = make_server(gateway)
        gateway.kill_worker(0)
        resp = http_request(
            server.port, "POST", "/translate",
            body={"sentence": "sum the hours", "stream": True,
                  "deadline_ms": 5000},
            timeout=60,
        )
        assert resp.terminated
        final = resp.ndjson()[-1]
        assert final["event"] == "final"
        assert final["status"] in (200, 206)
    finally:
        gateway.close(drain=False)
