"""Streaming differential: the HTTP final record equals in-process truth.

For every Table 2 test-split sentence, the final record of a streamed
``POST /translate`` must be **byte-identical** (canonical JSON) to the
``result`` payload of a direct in-process :class:`TranslationService`
call on the same workbook — streaming is an observability layer, never a
different answer.  A second pass injects a tight deadline and asserts
the anytime protocol: every intermediate chunk ranks no worse than its
predecessor, and the terminator always arrives.

``REPRO_DIFF_LIMIT`` caps the number of descriptions (evenly
subsampled; default: the full test split, the acceptance bar).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dataset import SHEET_ORDER, Corpus, build_sheet
from repro.http import ServiceStreamer, result_payload
from repro.runtime import TranslationService

from .conftest import FakeBackend, http_request

pytestmark = pytest.mark.slow

_LIMIT = os.environ.get("REPRO_DIFF_LIMIT")
TOP_K = 5


@pytest.fixture(scope="module")
def test_split():
    descriptions = Corpus.default().test
    if _LIMIT:
        n = int(_LIMIT)
        if 0 < n < len(descriptions):
            step = len(descriptions) / n
            descriptions = [descriptions[int(k * step)] for k in range(n)]
    return descriptions


def _canon(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _stream(port: int, sentence: str, deadline_ms: float):
    return http_request(
        port, "POST", "/translate",
        body={"sentence": sentence, "stream": True,
              "deadline_ms": deadline_ms},
        timeout=120,
    )


def test_streamed_final_matches_in_process(test_split, make_server):
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    services = {
        sheet_id: TranslationService(wb)
        for sheet_id, wb in workbooks.items()
    }
    servers = {
        sheet_id: make_server(
            FakeBackend(workbook=wb), streamer=ServiceStreamer(wb)
        )
        for sheet_id, wb in workbooks.items()
    }
    mismatches = []
    unterminated = 0
    for d in test_split:
        resp = _stream(servers[d.sheet_id].port, d.text, 60_000)
        if not resp.terminated:
            unterminated += 1
            continue
        final = resp.ndjson()[-1]
        expected = result_payload(
            services[d.sheet_id].translate(d.text),
            workbooks[d.sheet_id],
            TOP_K,
        )
        if _canon(final["result"]) != _canon(expected):
            mismatches.append((d.sheet_id, d.text))
    assert unterminated == 0
    assert not mismatches, (
        f"{len(mismatches)}/{len(test_split)} streamed finals diverged "
        f"from the in-process service, e.g. {mismatches[:3]}"
    )


def test_streamed_updates_monotone_under_tight_deadline(test_split, make_server):
    """Inject a deadline small enough to trip anytime behaviour on real
    sentences; every chunk sequence must be strictly improving and every
    stream terminated with a coded final record."""
    sample = test_split[:: max(1, len(test_split) // 60)]
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    servers = {
        sheet_id: make_server(
            FakeBackend(workbook=wb), streamer=ServiceStreamer(wb)
        )
        for sheet_id, wb in workbooks.items()
    }
    violations = []
    for d in sample:
        resp = _stream(servers[d.sheet_id].port, d.text, 75)
        assert resp.terminated, f"unterminated stream for {d.text!r}"
        records = resp.ndjson()
        final = records[-1]
        assert final["event"] in ("final", "error")
        if final["event"] == "final":
            assert final["status"] in (200, 206, 400)
        updates = [r for r in records if r["event"] == "update"]
        # The emitter's strict-improvement gate keys on the *full*
        # candidate ranking; the visible top-k tuple may therefore tie
        # between chunks, but it must never get lexicographically worse.
        keys = [tuple(s for _, s in u["programs"]) for u in updates]
        if any(a > b for a, b in zip(keys, keys[1:])):
            violations.append((d.text, keys))
        if updates:
            assert [u["seq"] for u in updates] == list(
                range(1, len(updates) + 1)
            )
    assert not violations, f"non-monotone streams: {violations[:3]}"
