"""Differential harness: memoisation must never change an answer.

Runs the Table 2 test split through :class:`TranslationService` with the
cache off, then twice with the cache on (a cold populating pass and a
fully warm pass), and asserts the three rankings serialise to identical
bytes — programs, scores, tiers, and error codes.  A second differential
pushes a batch through two gateways (cache on vs off) and compares the
wire-level replies the same way.

``REPRO_DIFF_LIMIT`` caps the number of descriptions per differential
(evenly subsampled; default: the full test split, which is what the
acceptance bar requires).  CI's quick lane sets a low limit; the slow
lane and local runs take the full split.
"""

from __future__ import annotations

import os

import pytest

from repro.cache import ResultCache
from repro.dataset import SHEET_ORDER, Corpus, build_sheet
from repro.runtime import TranslationService
from repro.serve import GatewayConfig, TranslationGateway

pytestmark = pytest.mark.slow

_LIMIT = os.environ.get("REPRO_DIFF_LIMIT")


@pytest.fixture(scope="module")
def test_split():
    descriptions = Corpus.default().test
    if _LIMIT:
        n = int(_LIMIT)
        if 0 < n < len(descriptions):
            step = len(descriptions) / n
            descriptions = [descriptions[int(k * step)] for k in range(n)]
    return descriptions


def _serialise_service(result) -> bytes:
    """Everything observable about a ranking, as bytes."""
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [
        f"{c.program}\t{c.score!r}" for c in result.candidates
    ]
    return "\n".join(lines).encode()


def _serialise_gateway(result) -> bytes:
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [
        f"{program}\t{score!r}" for program, score in result.programs
    ]
    lines.append(f"top_formula={result.top_formula}")
    return "\n".join(lines).encode()


def test_service_cached_equals_uncached(test_split):
    """Three passes over the full split: uncached, cache-cold, cache-warm.
    All three must serialise byte-identically, and the warm pass must be
    answered from the cache."""
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}
    plain = {
        sheet_id: TranslationService(wb)
        for sheet_id, wb in workbooks.items()
    }
    cached = {
        sheet_id: TranslationService(wb, cache=ResultCache(capacity=4096))
        for sheet_id, wb in workbooks.items()
    }
    mismatches = []
    warm_misses = 0
    for d in test_split:
        baseline = _serialise_service(plain[d.sheet_id].translate(d.text))
        cold = _serialise_service(cached[d.sheet_id].translate(d.text))
        warm_result = cached[d.sheet_id].translate(d.text)
        warm = _serialise_service(warm_result)
        if not (baseline == cold == warm):
            mismatches.append((d.sheet_id, d.text))
        # Only clean fully-searched runs are committed; with no deadline
        # every run is, so the repeat must be a hit.
        if not warm_result.cached:
            warm_misses += 1
    assert not mismatches, (
        f"{len(mismatches)}/{len(test_split)} rankings changed under "
        f"memoisation, e.g. {mismatches[:3]}"
    )
    assert warm_misses == 0


def test_gateway_batch_cached_equals_uncached(test_split):
    """The same batch through a cache-on and a cache-off gateway must
    produce byte-identical wire-level replies."""
    # A subsample keeps the four-pass gateway differential proportionate;
    # the service-level differential above already covers the full split.
    sample = test_split[:: max(1, len(test_split) // 120)]
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}

    def run(cache: bool, repeat: int):
        gateway = TranslationGateway(
            config=GatewayConfig(workers=2, queue_limit=1024, cache=cache)
        )
        try:
            out = []
            for _ in range(repeat):
                pendings = [
                    gateway.submit(d.text, workbooks[d.sheet_id])
                    for d in sample
                ]
                out.append([p.result(timeout=120.0) for p in pendings])
            stats = gateway.stats()
        finally:
            gateway.close(drain=True)
        return out, stats

    (baseline,), _ = run(cache=False, repeat=1)
    (cold, warm), stats = run(cache=True, repeat=2)
    for b, c, w in zip(baseline, cold, warm):
        assert _serialise_gateway(b) == _serialise_gateway(c) == \
            _serialise_gateway(w)
    # The warm wave ran after the cold wave completed, so it must have
    # been answered from the front-end cache.
    assert sum(r.cached for r in warm) == len(sample)
    assert stats.cache_hits >= len(sample)
