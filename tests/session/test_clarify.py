"""Tests for ambiguity clarification."""

import pytest

from repro.dataset import build_sheet
from repro.session import Clarification, clarify, needs_clarification
from repro.translate import Translator


@pytest.fixture(scope="module")
def translator():
    return Translator(build_sheet("payroll"))


class TestNeedsClarification:
    def test_decisive_ranking_needs_none(self, translator):
        candidates = translator.translate(
            "sum the totalpay for the capitol hill baristas"
        )
        assert not needs_clarification(candidates)
        assert clarify(candidates) is None

    def test_ambiguous_arithmetic_triggers(self, translator):
        # the genuinely ambiguous precedence case: a + b * c
        candidates = translator.translate("basepay plus otpay times 1.10")
        assert needs_clarification(candidates)

    def test_single_candidate_never_triggers(self, translator):
        candidates = translator.translate("sum the hours")[:1]
        assert not needs_clarification(candidates)

    def test_empty_list(self):
        assert not needs_clarification([])


class TestClarification:
    def test_structural_ambiguity_question(self, translator):
        candidates = translator.translate("basepay plus otpay times 1.10")
        clarification = clarify(candidates)
        assert isinstance(clarification, Clarification)
        text = clarification.render()
        assert "which did you mean" in text
        assert "1." in text and "2." in text

    def test_render_shows_both_paraphrases(self, translator):
        candidates = translator.translate("basepay plus otpay times 1.10")
        text = clarify(candidates).render()
        assert "plus" in text and "times" in text
