"""Integration tests for the interactive programming model (§4)."""

import pytest

from repro.dataset import build_sheet
from repro.errors import TranslationError
from repro.session import (
    CONFIDENCE_THRESHOLD,
    MAX_SHOWN,
    NLyzeSession,
    WordRole,
    annotate,
)
from repro.sheet import CellValue, Color


@pytest.fixture
def session():
    return NLyzeSession(build_sheet("payroll"))


class TestAsk:
    def test_at_most_three_candidates_shown(self, session):
        step = session.ask("sum the totalpay for the capitol hill baristas")
        assert 1 <= len(step.views) <= MAX_SHOWN

    def test_views_carry_excel_and_english(self, session):
        step = session.ask("sum the hours")
        view = step.views[0]
        assert view.excel.startswith("=SUM(")
        assert "sum up" in view.english

    def test_confidence_threshold_filters(self, session):
        step = session.ask("sum the totalpay for the capitol hill baristas")
        for view in step.views[1:]:
            assert view.candidate.score >= CONFIDENCE_THRESHOLD

    def test_render_contains_candidates(self, session):
        step = session.ask("sum the hours")
        text = step.render()
        assert text.startswith("> sum the hours")
        assert "1." in text


class TestAnnotations:
    def test_running_example_annotations(self, session):
        step = session.ask("sum the totalpay for the capitol hill baristas")
        top = step.views[0]
        rendered = top.render()
        assert "[totalpay]" in rendered
        assert "{capitol}" in rendered and "{hill}" in rendered

    def test_ignored_words_struck_through(self, session):
        step = session.ask("sum the totalpay for the capitol hill baristas")
        # lower-ranked candidates ignore either the barista or location part
        lower = "\n".join(v.render() for v in step.views[1:])
        assert "~" in lower

    def test_misspelled_word_marked(self, session):
        step = session.ask("sum the huors")
        assert "(?sp)" in step.views[0].render()

    def test_roles(self, session):
        step = session.ask("count employees where othours is greater than 1")
        top = step.views[0].candidate
        roles = {
            a.token.text: a.role
            for a in annotate(top, session._translator.ctx)
        }
        assert roles["othours"] is WordRole.COLUMN
        assert roles["1"] is WordRole.LITERAL


class TestAcceptAndSteps:
    def test_accept_places_result(self, session):
        step = session.ask("sum the hours")
        result = session.accept(step)
        assert result.kind == "scalar"
        at = result.addresses[0]
        assert session.workbook.get_value(at).payload == 342

    def test_cursor_advances_between_steps(self, session):
        first = session.run("sum the hours")
        second = session.run("sum the othours")
        assert first.addresses[0] != second.addresses[0]
        assert second.addresses[0].row == first.addresses[0].row + 1

    def test_choice_selects_other_candidate(self, session):
        step = session.ask("sum the totalpay for the capitol hill baristas")
        result = session.accept(step, choice=1)
        assert step.accepted is step.views[1].candidate
        assert result.value is not None

    def test_accept_empty_step_raises(self, session):
        step = session.ask("sum the hours")
        step.views = []
        with pytest.raises(TranslationError):
            session.accept(step)

    def test_selection_feeds_next_step(self, session):
        session.run("select the rows for the capitol hill baristas")
        result = session.run("sum the totalpay from the selected rows")
        assert result.value == CellValue.currency(396 + 492 + 432)

    def test_format_view_extended_across_steps(self, session):
        session.run("color the chef totalpay red")
        session.run("color the totalpay for the baristas red")
        result = session.run("add up the red totalpay cells")
        chefs = 800 + 984 + 832
        baristas = 396 + 390 + 492 + 252 + 432 + 192
        assert result.value == CellValue.currency(chefs + baristas)

    def test_format_actually_colors_cells(self, session):
        session.run("color the chef totalpay red")
        employees = session.workbook.table("Employees")
        chef_rows = [
            i for i in range(employees.n_rows)
            if employees.cell(i, 2).value.payload == "chef"
        ]
        for i in chef_rows:
            assert employees.cell(i, 7).format.color is Color.RED


class TestReplay:
    def test_replay_reflects_edited_inputs(self, session):
        session.run("sum the totalpay for the baristas")
        employees = session.workbook.table("Employees")
        employees.cell(0, 7).value = CellValue.currency(1000)  # alice raise
        results = session.replay()
        assert results[-1].value == CellValue.currency(
            1000 + 390 + 492 + 252 + 432 + 192
        )

    def test_program_records_accepted_only(self, session):
        session.ask("sum the hours")  # never accepted
        session.run("sum the othours")
        assert len(session.program) == 1

    def test_transcript_contains_all_steps(self, session):
        session.run("sum the hours")
        session.ask("count the employees")
        text = session.transcript()
        assert "sum the hours" in text
        assert "count the employees" in text
