"""Tests for reusable step scripts (the §4 'similar spreadsheets' story)."""

import pytest

from repro.dataset import build_sheet
from repro.dsl import ast
from repro.session import NLyzeSession, Script, ScriptError
from repro.sheet import CellValue, Table, ValueType, Workbook


def recorded_session():
    session = NLyzeSession(build_sheet("payroll"))
    session.run("sum the totalpay for the baristas")
    session.run("count the employees")
    return session


class TestCapture:
    def test_from_session_captures_accepted_steps(self):
        session = recorded_session()
        session.ask("average the hours")  # asked but never accepted
        script = Script.from_session(session)
        assert len(script) == 2
        assert "sum the totalpay" in script.description

    def test_programs_are_dsl_expressions(self):
        script = Script.from_session(recorded_session())
        assert isinstance(script.programs[0], ast.Reduce)
        assert isinstance(script.programs[1], ast.Count)


class TestPersistence:
    def test_round_trip(self):
        script = Script.from_session(recorded_session())
        loaded = Script.loads(script.dumps())
        assert loaded.programs == script.programs
        assert loaded.description == script.description

    def test_dumps_is_line_oriented(self):
        script = Script.from_session(recorded_session())
        lines = [l for l in script.dumps().splitlines() if l.strip()]
        assert len(lines) == 3  # description comment + 2 programs
        assert lines[0].startswith("#")

    def test_loads_skips_blank_lines(self):
        loaded = Script.loads("\n\nCount(GetTable(), True)\n\n")
        assert len(loaded) == 1


class TestApplication:
    def test_apply_to_similar_sheet(self):
        script = Script.from_session(recorded_session())
        target = build_sheet("payroll")  # a fresh copy = "similar sheet"
        target.set_cursor("J2")
        results = script.apply(target)
        assert results[0].value == CellValue.currency(2154)
        assert results[1].value.payload == 12

    def test_apply_to_edited_similar_sheet(self):
        script = Script.from_session(recorded_session())
        target = build_sheet("payroll")
        target.set_cursor("J2")
        target.table("Employees").cell(0, 7).value = CellValue.currency(1000)
        results = script.apply(target)
        assert results[0].value == CellValue.currency(2154 - 396 + 1000)

    def test_incompatible_schema_rejected_before_mutation(self):
        script = Script.from_session(recorded_session())
        target = build_sheet("countries")
        with pytest.raises(ScriptError):
            script.apply(target)
        # nothing was written
        assert not target.scratch_addresses

    def test_check_reports_problems(self):
        script = Script.from_session(recorded_session())
        assert script.check(build_sheet("payroll")) == []
        assert script.check(build_sheet("countries"))

    def test_apply_to_renamed_compatible_table(self):
        """'Similar' means same column names/types; the table name and data
        may differ."""
        script = Script.from_session(recorded_session())
        other = Workbook()
        other.add_table(Table.from_data(
            "Staff",
            ["name", "location", "title", "hours", "othours",
             "basepay", "otpay", "totalpay"],
            [["zoe", "uptown", "barista", 10, 0, 100, 0, 150]],
            types=[ValueType.TEXT, ValueType.TEXT, ValueType.TEXT,
                   ValueType.NUMBER, ValueType.NUMBER, ValueType.CURRENCY,
                   ValueType.CURRENCY, ValueType.CURRENCY],
        ))
        other.set_cursor("J2")
        results = script.apply(other)
        assert results[0].value == CellValue.currency(150)
        assert results[1].value.payload == 1
