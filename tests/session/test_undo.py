"""Tests for session undo and workbook snapshots."""

import pytest

from repro.dataset import build_sheet
from repro.errors import TranslationError
from repro.session import NLyzeSession
from repro.sheet import CellValue, Color


@pytest.fixture
def session():
    return NLyzeSession(build_sheet("payroll"))


class TestWorkbookClone:
    def test_clone_is_independent(self):
        original = build_sheet("payroll")
        twin = original.clone()
        original.table("Employees").cell(0, 0).value = CellValue.text("zed")
        assert twin.table("Employees").cell(0, 0).value.payload == "alice"

    def test_clone_preserves_formats_and_state(self):
        from repro.sheet import FormatFn

        original = build_sheet("payroll")
        original.table("Employees").cell(0, 7).apply_formats(
            [FormatFn.color("red")]
        )
        original.set_value("J9", CellValue.number(5))
        twin = original.clone()
        assert twin.table("Employees").cell(0, 7).format.color is Color.RED
        assert twin.get_value("J9").payload == 5
        assert twin.cursor == original.cursor

    def test_restore_round_trip(self):
        original = build_sheet("payroll")
        snapshot = original.clone()
        original.set_value("J9", CellValue.number(5))
        original.table("Employees").cell(0, 3).value = CellValue.number(99)
        original.restore(snapshot)
        assert original.get_value("J9").is_empty
        assert original.table("Employees").cell(0, 3).value.payload == 30


class TestUndo:
    def test_undo_removes_placed_value(self, session):
        result = session.run("sum the hours")
        at = result.addresses[0]
        session.undo()
        assert session.workbook.get_value(at).is_empty
        assert session.program == []

    def test_undo_keeps_earlier_steps(self, session):
        first = session.run("sum the hours")
        session.run("count the employees")
        session.undo()
        assert session.workbook.get_value(first.addresses[0]).payload == 342
        assert len(session.program) == 1

    def test_undo_reverts_formatting(self, session):
        session.run("color the chef totalpay red")
        session.undo()
        employees = session.workbook.table("Employees")
        assert employees.cell(1, 7).format.color is Color.NONE

    def test_undo_restores_cursor(self, session):
        before = session.workbook.cursor
        session.run("sum the hours")
        session.undo()
        assert session.workbook.cursor == before

    def test_undo_then_new_step_lands_in_freed_cell(self, session):
        first = session.run("sum the hours")
        session.undo()
        second = session.run("count the employees")
        assert second.addresses[0] == first.addresses[0]

    def test_undo_empty_session_raises(self, session):
        with pytest.raises(TranslationError):
            session.undo()

    def test_undo_twice(self, session):
        session.run("sum the hours")
        session.run("sum the othours")
        session.undo()
        session.undo()
        assert session.program == []
        assert not session.workbook.scratch_addresses
