"""The health state machine, driven synchronously via ``check_once``."""

from __future__ import annotations

from repro.cluster import DOWN, SUSPECT, UP, HealthMonitor
from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry


class FlippableProbe:
    def __init__(self, healthy: bool = True) -> None:
        self.healthy = healthy

    def __call__(self) -> bool:
        return self.healthy


def make_monitor(n: int = 2, threshold: int = 2, metrics=None):
    probes = {i: FlippableProbe() for i in range(n)}
    monitor = HealthMonitor(
        {i: p for i, p in probes.items()},
        failure_threshold=threshold,
        clock=ManualClock(),
        metrics=metrics,
    )
    return monitor, probes


def test_all_up_initially():
    monitor, _ = make_monitor()
    assert monitor.states() == {0: UP, 1: UP}
    assert monitor.alive() == {0, 1}


def test_one_failure_is_suspicion_not_death():
    monitor, probes = make_monitor(threshold=2)
    probes[0].healthy = False
    monitor.check_once()
    assert monitor.state(0) == SUSPECT
    # a suspect shard is still routable
    assert monitor.alive() == {0, 1}


def test_threshold_consecutive_failures_is_down():
    monitor, probes = make_monitor(threshold=3)
    probes[1].healthy = False
    for _ in range(3):
        monitor.check_once()
    assert monitor.state(1) == DOWN
    assert monitor.alive() == {0}


def test_success_clears_suspicion():
    monitor, probes = make_monitor(threshold=3)
    probes[0].healthy = False
    monitor.check_once()
    monitor.check_once()
    assert monitor.state(0) == SUSPECT
    probes[0].healthy = True
    monitor.check_once()
    assert monitor.state(0) == UP
    # the failure streak reset: two fresh failures are suspicion again
    probes[0].healthy = False
    monitor.check_once()
    monitor.check_once()
    assert monitor.state(0) == SUSPECT


def test_request_success_is_a_heartbeat():
    monitor, probes = make_monitor(threshold=2)
    probes[0].healthy = False
    monitor.check_once()
    monitor.note_success(0)  # a served request clears suspicion immediately
    assert monitor.state(0) == UP
    monitor.check_once()  # one more probe failure: back to suspect, not down
    assert monitor.state(0) == SUSPECT


def test_mark_down_is_immediate():
    monitor, _ = make_monitor()
    monitor.mark_down(0)
    assert monitor.state(0) == DOWN
    assert monitor.alive() == {1}


def test_revival_on_probe_success():
    monitor, probes = make_monitor(threshold=1)
    probes[0].healthy = False
    monitor.check_once()
    assert monitor.state(0) == DOWN
    probes[0].healthy = True
    monitor.check_once()
    assert monitor.state(0) == UP
    assert monitor.alive() == {0, 1}


def test_on_down_fires_once_per_transition():
    fired = []
    probes = {0: FlippableProbe(False)}
    monitor = HealthMonitor(
        probes, failure_threshold=1, clock=ManualClock(),
        on_down=fired.append,
    )
    monitor.check_once()
    monitor.check_once()  # still down: no second callback
    assert fired == [0]
    monitor.mark_down(0)  # already down: still no second callback
    assert fired == [0]


def test_probe_exception_reads_as_failure():
    def broken() -> bool:
        raise RuntimeError("probe bug")

    monitor = HealthMonitor(
        {0: broken}, failure_threshold=1, clock=ManualClock()
    )
    monitor.check_once()
    assert monitor.state(0) == DOWN


def test_health_gauge_tracks_routability():
    metrics = MetricsRegistry(ManualClock())
    monitor, probes = make_monitor(threshold=1, metrics=metrics)
    gauge = metrics.gauge("cluster_shard_healthy")
    assert gauge.value(shard=0) == 1
    probes[0].healthy = False
    monitor.check_once()
    assert gauge.value(shard=0) == 0
    assert gauge.value(shard=1) == 1
    assert metrics.counter("cluster_health_probe_failures_total").total() == 1


def test_background_thread_start_stop():
    monitor, probes = make_monitor(threshold=1)
    monitor.interval = 0.005
    probes[0].healthy = False
    monitor.start()
    try:
        from ..serve.waiters import wait_until

        wait_until(lambda: monitor.state(0) == DOWN, timeout=5.0)
    finally:
        monitor.stop()
    assert monitor.state(1) == UP


def test_snapshot_shape():
    monitor, _ = make_monitor()
    snap = monitor.snapshot()
    assert snap["states"] == {0: UP, 1: UP}
    assert snap["failure_threshold"] == 2
