"""Rendezvous routing: determinism, balance, minimal disruption, hot shards."""

from __future__ import annotations

import pytest

from repro.cluster import RendezvousRouter, detect_hot_shards


def _fingerprints(n: int) -> list[str]:
    return [f"fingerprint-{i:04d}" for i in range(n)]


def test_route_is_deterministic_across_instances():
    a = RendezvousRouter([0, 1, 2])
    b = RendezvousRouter([0, 1, 2])
    for fp in _fingerprints(50):
        assert a.route(fp) == b.route(fp)
        assert a.preference(fp) == b.preference(fp)


def test_preference_ranks_every_shard_once():
    router = RendezvousRouter([0, 1, 2, 3])
    for fp in _fingerprints(20):
        ranked = router.preference(fp)
        assert sorted(ranked) == [0, 1, 2, 3]
        assert router.route(fp) == ranked[0]


def test_load_is_roughly_balanced():
    router = RendezvousRouter([0, 1, 2])
    counts = {0: 0, 1: 0, 2: 0}
    fps = _fingerprints(3000)
    for fp in fps:
        counts[router.route(fp)] += 1
    fair = len(fps) / 3
    for shard, count in counts.items():
        assert 0.8 * fair < count < 1.2 * fair, (shard, counts)


def test_minimal_disruption_on_shard_death():
    """Killing one shard moves only the fingerprints homed on it; every
    other fingerprint keeps its shard — the rendezvous property."""
    router = RendezvousRouter([0, 1, 2])
    fps = _fingerprints(500)
    before = {fp: router.route(fp) for fp in fps}
    alive = {0, 2}
    for fp in fps:
        after = router.route(fp, alive)
        if before[fp] == 1:
            # displaced fingerprints land on their second choice
            assert after == next(
                s for s in router.preference(fp) if s in alive
            )
        else:
            assert after == before[fp]


def test_route_with_no_live_shards():
    router = RendezvousRouter([0, 1])
    assert router.route("anything", alive=set()) is None


def test_router_validates_shard_ids():
    with pytest.raises(ValueError):
        RendezvousRouter([])
    with pytest.raises(ValueError):
        RendezvousRouter([0, 0])


def test_memo_is_bounded():
    router = RendezvousRouter([0, 1], memo_capacity=8)
    for fp in _fingerprints(100):
        router.preference(fp)
    assert len(router._memo) <= 8


def test_detect_hot_shards_names_the_culprit():
    router = RendezvousRouter([0, 1, 2])
    whale = "the-one-giant-tenant"
    traffic = {fp: 1 for fp in _fingerprints(30)}
    traffic[whale] = 500
    report = detect_hot_shards(traffic, router, hot_factor=2.0, min_requests=20)
    hot = router.route(whale)
    assert report.hot_shards == [hot]
    assert report.culprits[hot][0] == (whale, 500)
    assert report.total == 530
    assert report.load[hot] >= 500


def test_detect_hot_shards_quiet_below_min_requests():
    router = RendezvousRouter([0, 1, 2])
    report = detect_hot_shards({"a": 5}, router, min_requests=20)
    assert report.hot_shards == []
    assert report.total == 5


def test_detect_hot_shards_balanced_traffic_is_not_hot():
    router = RendezvousRouter([0, 1, 2])
    traffic = {fp: 3 for fp in _fingerprints(300)}
    report = detect_hot_shards(traffic, router, hot_factor=2.0)
    assert report.hot_shards == []
    snap = report.snapshot()
    assert snap["total"] == 900 and snap["hot_shards"] == []


def test_detect_hot_shards_projects_onto_survivors():
    """With a shard dead, its traffic lands on the survivors' loads."""
    router = RendezvousRouter([0, 1, 2])
    traffic = {fp: 1 for fp in _fingerprints(300)}
    report = detect_hot_shards(traffic, router, alive={0, 2})
    assert set(report.load) == {0, 2}
    assert sum(report.load.values()) == 300
