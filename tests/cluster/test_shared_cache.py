"""The shared cache tier: codec framing, LRU store, invalidation, quarantine."""

from __future__ import annotations

import pytest

from repro.cache import CacheKey, encode_entry
from repro.cluster import ByteStore, InMemoryByteStore, SharedCacheTier


def key(i: int = 0, fingerprint: str = "f" * 16) -> CacheKey:
    return CacheKey(f"sentence {i}", fingerprint, "opts")


PAYLOAD = {
    "tier": "full",
    "programs": (("=SUM(A:A)", 1.0),),
    "n_candidates": 3,
    "top_formula": "=SUM(A:A)",
    "elapsed": 0.01,
    "budget_spent": 10,
}


class TestInMemoryByteStore:
    def test_satisfies_the_protocol(self):
        assert isinstance(InMemoryByteStore(), ByteStore)

    def test_get_put_delete(self):
        store = InMemoryByteStore()
        assert store.get("a") is None
        store.put("a", b"1")
        assert store.get("a") == b"1"
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert store.get("a") is None

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            InMemoryByteStore().put("a", "not bytes")

    def test_lru_eviction(self):
        store = InMemoryByteStore(capacity=2)
        store.put("a", b"1")
        store.put("b", b"2")
        store.get("a")  # refresh a: b is now least recent
        store.put("c", b"3")
        assert store.get("b") is None
        assert store.get("a") == b"1" and store.get("c") == b"3"
        assert len(store) == 2

    def test_scan_by_prefix(self):
        store = InMemoryByteStore()
        store.put("ns:f1:x", b"1")
        store.put("ns:f1:y", b"2")
        store.put("ns:f2:z", b"3")
        assert sorted(store.scan("ns:f1:")) == ["ns:f1:x", "ns:f1:y"]


class TestSharedCacheTier:
    def test_miss_then_put_then_hit(self):
        tier = SharedCacheTier()
        assert tier.get(key()) is None
        tier.put(key(), PAYLOAD)
        got = tier.get(key())
        assert got == PAYLOAD
        assert (tier.hits, tier.misses, tier.puts) == (1, 1, 1)

    def test_payload_is_never_aliased(self):
        """Every read decodes fresh bytes: mutating one caller's payload
        must not leak into the next caller's."""
        tier = SharedCacheTier()
        tier.put(key(), PAYLOAD)
        first = tier.get(key())
        first["tier"] = "mangled"
        assert tier.get(key())["tier"] == "full"

    def test_invalidate_by_fingerprint(self):
        tier = SharedCacheTier()
        tier.put(key(0, "aaa"), PAYLOAD)
        tier.put(key(1, "aaa"), PAYLOAD)
        tier.put(key(0, "bbb"), PAYLOAD)
        assert tier.invalidate("aaa") == 2
        assert tier.get(key(0, "aaa")) is None
        assert tier.get(key(1, "aaa")) is None
        assert tier.get(key(0, "bbb")) == PAYLOAD

    def test_corrupt_blob_reads_as_miss_and_is_dropped(self):
        store = InMemoryByteStore()
        tier = SharedCacheTier(store=store)
        tier.put(key(), PAYLOAD)
        flat = store.scan("")[0]
        store.put(flat, b"{corrupt json")
        assert tier.get(key()) is None
        assert tier.codec_errors == 1
        # the bad blob is gone: the next read is a clean miss
        assert store.get(flat) is None
        assert tier.get(key()) is None
        assert tier.codec_errors == 1

    def test_key_mismatch_reads_as_codec_error(self):
        """A blob stored under the wrong flat key (store bug, colliding
        writer) must not be served as an answer for the wrong request."""
        store = InMemoryByteStore()
        tier = SharedCacheTier(store=store)
        tier.put(key(0), PAYLOAD)
        flat = store.scan("")[0]
        store.put(flat, encode_entry(key(1), PAYLOAD))
        assert tier.get(key(0)) is None
        assert tier.codec_errors == 1

    def test_snapshot_shape(self):
        tier = SharedCacheTier()
        tier.put(key(), PAYLOAD)
        tier.get(key())
        tier.get(key(99))
        snap = tier.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1 and snap["puts"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["size"] == 1

    def test_capacity_bounds_the_default_store(self):
        tier = SharedCacheTier(capacity=4)
        for i in range(10):
            tier.put(key(i), PAYLOAD)
        assert len(tier.store) == 4
