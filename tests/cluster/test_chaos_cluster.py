"""Cluster chaos: SIGKILL an entire shard under concurrent load.

The headline robustness guarantee for ``repro.cluster``, one level above
the gateway's: with a whole shard dying underneath it — every worker
process SIGKILLed at once, no respawns — every submitted request still
resolves to exactly one coded result.  **Zero lost** (every future
resolves) and **zero duplicated** (each future's done-callback fires
exactly once, so no request is ever answered twice by a retry racing the
original).

``REPRO_CHAOS_REQUESTS`` scales the load (default 200, the acceptance
floor; CI sets it lower for speed).  ``REPRO_CHAOS_TRACE_DIR`` arms
tracing and dumps the span log for CI artifact upload, exactly like the
single-gateway storm in ``tests/serve/test_chaos.py``.
"""

from __future__ import annotations

import os
import threading
from collections import Counter

import pytest

from repro.cluster import DOWN, ShardedCluster
from repro.obs import Tracer
from repro.obs.export import write_spans_jsonl
from repro.sheet import CellValue

from ..conftest import make_payroll
from ..serve.waiters import wait_until

N_REQUESTS = int(os.environ.get("REPRO_CHAOS_REQUESTS", "200"))
SHARDS = 3
WORKERS_PER_SHARD = 2
DEADLINE = 120.0  # generous: any shed under chaos would be a real bug

SENTENCES = [
    "sum the hours",
    "count the employees",
    "sum the totalpay for the capitol hill baristas",
    "average the rate",
]


def _workbooks(n: int = 4):
    """``n`` distinct fingerprints, so traffic spreads across shards."""
    out = []
    for i in range(n):
        workbook = make_payroll()
        if i:
            workbook.table("Employees").cell(0, 3).value = CellValue.number(
                90 + i
            )
        out.append(workbook)
    return out


@pytest.fixture
def chaos_tracer(request):
    """Armed only when ``REPRO_CHAOS_TRACE_DIR`` is set (CI's chaos lane)."""
    out_dir = os.environ.get("REPRO_CHAOS_TRACE_DIR")
    tracer = Tracer() if out_dir else None
    yield tracer
    if out_dir and tracer is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{request.node.name}.spans.jsonl")
        n = write_spans_jsonl(tracer, path)
        print(f"chaos trace: {n} spans -> {path}")


def _make_cluster(tracer, **overrides):
    return ShardedCluster(
        shards=SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        queue_limit=N_REQUESTS + 2 * WORKERS_PER_SHARD,
        # chaos kills are environmental, not workbook poison: a breaker
        # tripping on them would mask the invariant under test
        breaker_threshold=10_000,
        restart_backoff=0.01,
        restart_backoff_cap=0.1,
        retry_backoff=0.01,
        retry_backoff_cap=0.2,
        tracer=tracer,
        **overrides,
    )


def _pick_victim(cluster, workbooks):
    """The shard carrying the most of the storm's fingerprints — killing
    it guarantees a meaningful slice of the load must fail over."""
    routed = Counter(
        cluster.router.route(workbook.fingerprint()) for workbook in workbooks
    )
    return routed.most_common(1)[0][0]


@pytest.mark.slow
def test_shard_kill_loses_nothing_duplicates_nothing(chaos_tracer):
    workbooks = _workbooks()
    cluster = _make_cluster(chaos_tracer, shared_cache=False)
    victim = _pick_victim(cluster, workbooks)
    resolutions: list[int] = [0] * N_REQUESTS
    try:
        pendings = []
        for i in range(N_REQUESTS):
            # mostly-unique sentences: the storm must cross the worker
            # pools, not collapse into repeats of four rankings
            sentence = f"{SENTENCES[i % len(SENTENCES)]} {i // len(SENTENCES)}"
            pending = cluster.submit(
                sentence, workbooks[i % len(workbooks)], deadline=DEADLINE
            )
            def bump(result, i=i):
                resolutions[i] += 1
            pending.add_done_callback(bump)
            pendings.append(pending)
        # Kill the victim only once it is genuinely mid-storm: requests
        # executing on its workers *right now* are the ones that must
        # fail over.  ``in_flight`` alone is not enough — a runner bumps
        # it *before* forking the worker, so at storm start the shard can
        # be "busy" with zero processes to kill.
        def victim_mid_storm() -> bool:
            gw = cluster.shards[victim].gateway.stats()
            return gw.in_flight >= 1 and any(w.alive for w in gw.workers)

        wait_until(
            victim_mid_storm,
            timeout=60.0,
            message="storm never reached the victim shard",
        )
        killed = cluster.kill_shard(victim)
        assert killed >= 1, "the victim shard had no live workers to kill"
        results = [p.result(timeout=600.0) for p in pendings]
        # At small storm sizes the queue can drain before the probe loop
        # has failed the victim enough times to declare it down; wait for
        # the transition while the monitor is still alive (``close``
        # below stops probing, freezing the state wherever it is).
        wait_until(
            lambda: cluster.health.state(victim) == DOWN,
            timeout=60.0,
            message="victim shard never probed down",
        )
    finally:
        cluster.close(drain=False)

    # zero lost: one coded result per submission
    assert len(results) == N_REQUESTS
    for result in results:
        assert result.ok or result.error_code is not None

    # zero duplicated: every future resolved exactly once
    assert resolutions == [1] * N_REQUESTS

    stats = cluster.stats()
    assert stats.submitted == N_REQUESTS
    assert stats.completed == N_REQUESTS
    assert stats.ok + stats.failed == N_REQUESTS

    # deadlines were generous and two shards stayed up the whole time:
    # every request must have been *served*, not errored — the kill is
    # invisible to callers except as latency
    codes = Counter(r.error_code for r in results if not r.ok)
    assert stats.ok == N_REQUESTS, f"failures under failover: {dict(codes)}"

    # the kill really bit: the victim went down and requests failed over
    assert cluster.health.state(victim) == DOWN
    assert stats.failovers >= 1, "no request actually failed over"
    assert stats.retries >= 1
    # every request that retried off the victim was served by a survivor
    for result in results:
        if result.attempts > 1:
            assert result.shard_id != victim
    survivors = {r.shard_id for r in results if r.shard_id is not None}
    assert survivors - {victim}, "no surviving shard served anything"

    # per-shard accounting stayed consistent under the storm
    for shard in cluster.shards:
        gw = shard.gateway.stats()
        assert gw.in_flight == 0 and gw.queue_depth == 0


@pytest.mark.slow
def test_shard_kill_with_shared_cache(chaos_tracer):
    """The zero-loss bar must hold with the shared tier in the path, and
    entries written before the kill keep answering after it."""
    workbooks = _workbooks()
    n_requests = max(40, N_REQUESTS // 2)
    cluster = _make_cluster(chaos_tracer, shared_cache=True)
    victim = _pick_victim(cluster, workbooks)
    try:
        # Warm pass: every (sentence, workbook) pair committed once.
        for workbook in workbooks:
            for sentence in SENTENCES:
                result = cluster.translate(
                    sentence, workbook, deadline=DEADLINE, wait=600.0
                )
                assert result.ok
        warmed = cluster.stats().shared_cache["puts"]
        assert warmed > 0
        pendings = [
            cluster.submit(
                SENTENCES[i % len(SENTENCES)]
                if i % 2 == 0
                else f"{SENTENCES[i % len(SENTENCES)]} v{i}",
                workbooks[i % len(workbooks)],
                deadline=DEADLINE,
            )
            for i in range(n_requests)
        ]
        wait_until(
            lambda: cluster.shards[victim].gateway.stats().in_flight >= 1
            or all(p.done() for p in pendings),
            timeout=60.0,
        )
        cluster.kill_shard(victim)
        results = [p.result(timeout=600.0) for p in pendings]
        # post-kill, a warm repeat still hits even when its home shard is
        # the corpse: the tier is shared, not shard-local
        post_kill = [
            cluster.translate(
                sentence, workbook, deadline=DEADLINE, wait=600.0
            )
            for workbook in workbooks
            for sentence in SENTENCES
        ]
    finally:
        cluster.close(drain=False)

    assert len(results) == n_requests
    assert all(r.ok for r in results)
    stats = cluster.stats()
    assert stats.completed == stats.submitted
    # the even half were warm repeats: answered by the shared tier, no
    # shard touched — dead or alive
    hits = [r for r in results if r.cached]
    assert len(hits) >= n_requests // 2
    for result in hits:
        assert result.shard_id is None and result.attempts == 0
    assert all(r.ok and r.cached for r in post_kill)
    assert stats.shared_cache["hits"] >= len(hits) + len(post_kill)


@pytest.mark.slow
def test_post_kill_cluster_keeps_serving(chaos_tracer):
    """After losing a shard, the survivors keep serving fresh work and
    the dead shard stays out of the route."""
    workbooks = _workbooks()
    cluster = _make_cluster(chaos_tracer, shared_cache=False)
    victim = _pick_victim(cluster, workbooks)
    try:
        first = [
            cluster.translate(s, w, deadline=DEADLINE, wait=600.0)
            for w in workbooks
            for s in SENTENCES[:2]
        ]
        assert all(r.ok for r in first)
        cluster.kill_shard(victim)
        second = [
            cluster.translate(f"{s} again", w, deadline=DEADLINE, wait=600.0)
            for w in workbooks
            for s in SENTENCES[:2]
        ]
        assert all(r.ok for r in second)
        assert all(r.shard_id != victim for r in second)
        rerouted = [r for r in second if r.rerouted]
        routed_home = Counter(
            cluster.router.route(w.fingerprint()) for w in workbooks
        )
        if routed_home[victim]:
            assert rerouted, "fingerprints homed on the corpse never rerouted"
    finally:
        cluster.close(drain=False)
