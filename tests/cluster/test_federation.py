"""The cluster telemetry plane: federation, live SLO burn, tail sampling.

Three acceptance properties from the telemetry-plane issue, asserted on
a real multi-shard cluster with live worker processes:

* the federated ``/metrics`` view equals the fold of the cluster
  registry with every per-shard registry (and lints clean under
  ``scripts/check_prom.py``);
* a fault-injected error storm trips the **fast** burn-rate alert while
  the **slow** alert stays green, with the whole 6-hour timeline driven
  through an injected :class:`ManualClock`;
* the tail sampler retains 100% of error traces submitted under known
  caller-chosen trace ids.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

from repro.cluster import ShardedCluster
from repro.obs.clock import ManualClock
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SloSpec, fold_state, merge_states
from repro.sheet import CellValue

from ..conftest import make_payroll
from ..serve.waiters import wait_until

WAIT = 120.0

_SPEC = importlib.util.spec_from_file_location(
    "check_prom",
    Path(__file__).resolve().parents[2] / "scripts" / "check_prom.py",
)
check_prom = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_prom", check_prom)
_SPEC.loader.exec_module(check_prom)


def _other_payroll():
    workbook = make_payroll()
    workbook.table("Employees").cell(0, 3).value = CellValue.number(99)
    return workbook


def _counter_value(registry_state, name, **labels):
    """Read one counter sample out of an exported/merged state dict by
    folding it into a fresh registry (the read path scrapers use)."""
    registry = MetricsRegistry()
    fold_state(registry, registry_state)
    metric = registry._metrics.get(name)
    return metric.value(**labels) if metric is not None else 0.0


def test_federated_metrics_equal_fold_of_shard_registries():
    with ShardedCluster(
        make_payroll(), shards=3, workers_per_shard=1
    ) as cluster:
        results = [
            cluster.translate("sum the hours", wait=WAIT),
            cluster.translate("sum the hours", wait=WAIT),  # shared-cache hit
            cluster.translate("sum the hours", _other_payroll(), wait=WAIT),
        ]
        assert all(r.ok for r in results)
        # Worker deltas ride reply-pipe messages; wait until at least one
        # shard has folded its workers' registries.
        wait_until(
            lambda: any(
                "worker_requests_total" in shard.gateway.metrics.render()
                for shard in cluster.shards
            ),
            timeout=WAIT,
        )

        federated = cluster.federated_state()
        by_hand = merge_states(
            cluster.metrics.export_state(),
            *[s.gateway.metrics.export_state() for s in cluster.shards],
        )
        assert federated == by_hand
        assert cluster.federated_render() == render_prometheus(by_hand)

        # Non-tautological spot checks: the merged counters equal the sums
        # of the per-registry values they were folded from.
        cluster_ok = cluster.metrics.counter(
            "telemetry_requests_total"
        ).value(scope="cluster", code="ok")
        assert cluster_ok == len(results)
        shard_ok = sum(
            s.gateway.metrics.counter("telemetry_requests_total").value(
                scope="gateway", code="ok"
            )
            for s in cluster.shards
        )
        assert _counter_value(
            federated, "telemetry_requests_total", scope="cluster", code="ok"
        ) == cluster_ok
        assert _counter_value(
            federated, "telemetry_requests_total", scope="gateway", code="ok"
        ) == shard_ok
        # The cache hit never touched a shard: gateway scope saw one
        # request per distinct workbook, the cluster scope saw all three.
        assert shard_ok == 2

        text = cluster.federated_render()
        assert "worker_requests_total" in text
        assert "cluster_events_total" in text
        assert check_prom.lint(text) == []


def test_error_storm_trips_fast_burn_while_slow_stays_green():
    """Six simulated hours of healthy traffic, then a 30-minute fault
    storm: the fast (5m/1h @ 14.4x) pair fires, the slow (1h/6h @ 6x)
    pair does not, because the 6h window still remembers the good day.

    Objective 0.95 keeps the arithmetic honest: the budget is 0.05, so
    an all-errors 5m window burns at 20x — above 14.4 — while 30 errors
    against ~82 good events over 6h burns at ~5.4x, under 6.
    """
    clock = ManualClock(start=1000.0)
    with ShardedCluster(
        make_payroll(),
        shards=2,
        workers_per_shard=1,
        clock=clock,
        slo_specs=(
            SloSpec(
                "availability", "availability", 0.95,
                description="storm-test objective",
            ),
        ),
    ) as cluster:
        # Good phase: one real compute, then shared-cache hits — each
        # observed as ok by the cluster hub — spaced 240 simulated
        # seconds over six hours.
        for _ in range(90):
            result = cluster.translate("sum the hours", wait=WAIT)
            assert result.ok
            clock.advance(240.0)
        # Storm: injected worker faults, one per simulated minute.
        for _ in range(30):
            result = cluster.translate(
                "sum the hours", faults="tokenize:raise:runtime", wait=WAIT
            )
            assert not result.ok and result.error_code == "internal_error"
            clock.advance(60.0)

        report = cluster.slo_report()
        assert report["scope"] == "cluster" and not report["healthy"]
        availability = next(
            s for s in report["slos"] if s["name"] == "availability"
        )
        alerts = {a["rule"]: a for a in availability["alerts"]}
        fast, slow = alerts["fast"], alerts["slow"]
        assert fast["fired"]
        assert fast["short_burn_rate"] > 14.4  # 5m: all errors -> 20x
        assert fast["long_burn_rate"] > 14.4
        assert not slow["fired"]
        assert slow["long_burn_rate"] < 6.0  # 6h still mostly good
        assert slow["short_burn_rate"] > 6.0  # 1h alone is not enough
        windows = availability["windows"]
        assert windows["5m"]["error_rate"] == 1.0
        assert windows["6h"]["good"] > windows["6h"]["bad"]
        # The per-shard reports ride along for the /slo document.
        assert [s["shard_id"] for s in report["shards"]] == [0, 1]
        assert all("slos" in s for s in report["shards"])


def test_sampler_retains_every_error_trace():
    with ShardedCluster(
        make_payroll(), shards=2, workers_per_shard=1
    ) as cluster:
        error_ids = [f"storm-err-{i}" for i in range(10)]
        pendings = [
            cluster.submit(
                "sum the hours",
                faults="tokenize:raise:runtime",
                trace_id=trace_id,
            )
            for trace_id in error_ids
        ]
        pendings += [
            cluster.submit("sum the hours", trace_id=f"fine-{i}")
            for i in range(5)
        ]
        results = [p.result(WAIT) for p in pendings]
        assert sum(1 for r in results if not r.ok) == len(error_ids)

        lines = cluster.sampled_traces()
        assert all(line.endswith("\n") for line in lines)
        records = [json.loads(line) for line in lines]
        kept = {r["trace_id"] for r in records}
        # 100% of error traces survive — and each appears both in the
        # cluster scope's sampler and in the serving shard's.
        assert set(error_ids) <= kept
        counts = {
            trace_id: sum(1 for r in records if r["trace_id"] == trace_id)
            for trace_id in error_ids
        }
        assert all(count >= 2 for count in counts.values()), counts
        assert all(
            r["verdict"] == "error"
            for r in records
            if r["trace_id"] in set(error_ids)
        )
