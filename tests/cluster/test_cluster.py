"""ShardedCluster behaviour: routing, failover, shared cache, lifecycle."""

from __future__ import annotations

import pytest

from repro.cluster import (
    CLUSTER_CLOSED,
    DOWN,
    SHARD_DOWN,
    ClusterConfig,
    ShardedCluster,
)
from repro.sheet import CellValue

from ..conftest import make_payroll
from ..serve.waiters import wait_until

WAIT = 120.0


def _other_payroll():
    workbook = make_payroll()
    workbook.table("Employees").cell(0, 3).value = CellValue.number(99)
    return workbook


@pytest.fixture
def cluster():
    c = ShardedCluster(
        make_payroll(), shards=3, workers_per_shard=1,
        restart_backoff=0.01, restart_backoff_cap=0.1,
        retry_backoff=0.01, retry_backoff_cap=0.1,
    )
    yield c
    c.close(drain=False)


def test_config_validation():
    with pytest.raises(ValueError):
        ShardedCluster(make_payroll(), shards=0)


def test_requires_a_workbook():
    with ShardedCluster(shards=1, workers_per_shard=1) as cluster:
        with pytest.raises(ValueError):
            cluster.submit("sum the hours")


def test_translate_routes_to_the_home_shard(cluster):
    result = cluster.translate("sum the hours", wait=WAIT)
    assert result.ok and result.top_formula == "=SUM(D2:D7)"
    home = cluster.router.route(result.fingerprint)
    assert result.shard_id == home
    assert result.attempts == 1 and not result.rerouted


def test_same_fingerprint_same_shard(cluster):
    """Shard affinity: every request for one workbook lands on one shard."""
    results = cluster.translate_many(
        [f"sum the hours plus {i}" for i in range(6)], wait=WAIT
    )
    shards = {r.shard_id for r in results if r.shard_id is not None}
    assert len(shards) == 1


def test_different_fingerprints_can_spread(cluster):
    a = cluster.translate("sum the hours", wait=WAIT)
    b = cluster.translate("sum the hours", _other_payroll(), wait=WAIT)
    assert a.fingerprint != b.fingerprint
    assert a.shard_id == cluster.router.route(a.fingerprint)
    assert b.shard_id == cluster.router.route(b.fingerprint)


def test_shared_cache_hits_across_the_cluster(cluster):
    miss = cluster.translate("sum the hours", wait=WAIT)
    assert miss.ok and not miss.cached
    hit = cluster.translate("sum the hours", wait=WAIT)
    assert hit.ok and hit.cached
    assert hit.shard_id is None and hit.attempts == 0
    assert hit.programs == miss.programs
    assert cluster.stats().cache_hits == 1


def test_cache_hit_survives_home_shard_death(cluster):
    """The point of the shared tier: an answer computed by a shard that
    has since died still answers repeats."""
    first = cluster.translate("sum the hours", wait=WAIT)
    assert first.ok
    cluster.kill_shard(first.shard_id)
    hit = cluster.translate("sum the hours", wait=WAIT)
    assert hit.ok and hit.cached


def test_failover_reroutes_to_next_choice(cluster):
    first = cluster.translate("sum the hours", wait=WAIT)
    home = first.shard_id
    cluster.kill_shard(home)
    assert cluster.health.state(home) == DOWN
    second = cluster.translate("count the employees", wait=WAIT)
    assert second.ok
    assert second.shard_id != home
    assert second.rerouted
    preference = cluster.router.preference(second.fingerprint)
    live_choice = next(s for s in preference if s != home)
    assert second.shard_id == live_choice


def test_poison_request_exhausts_attempts(cluster):
    """A request that crashes every worker it touches resolves with the
    crash code after the attempt limit — exactly once, never an exception."""
    result = cluster.translate(
        "sum the hours", faults="worker_crash:raise", wait=WAIT
    )
    assert not result.ok
    assert result.error_code == "worker_crashed"
    assert result.attempts == cluster.config.attempts_limit
    assert cluster.stats().retries == cluster.config.attempts_limit - 1


def test_all_shards_dead_is_shard_down(cluster):
    for shard in cluster.shards:
        cluster.kill_shard(shard.shard_id)
    result = cluster.translate("sum the hours", wait=WAIT)
    assert not result.ok and result.error_code == SHARD_DOWN
    assert cluster.stats().live_shards == 0


def test_submit_after_close_is_cluster_closed():
    cluster = ShardedCluster(make_payroll(), shards=1, workers_per_shard=1)
    cluster.close()
    result = cluster.translate("sum the hours", wait=5.0)
    assert not result.ok and result.error_code == CLUSTER_CLOSED
    assert cluster.stats().closed_rejected == 1


def test_close_is_idempotent(cluster):
    cluster.close()
    cluster.close()


def test_context_manager_closes():
    with ShardedCluster(make_payroll(), shards=1, workers_per_shard=1) as c:
        assert c.translate("sum the hours", wait=WAIT).ok
    result = c.translate("sum the hours", wait=5.0)
    assert result.error_code == CLUSTER_CLOSED


def test_deadline_expiry_resolves_without_a_shard():
    with ShardedCluster(
        make_payroll(), shards=1, workers_per_shard=1, shared_cache=False,
    ) as cluster:
        result = cluster.translate("sum the hours", deadline=0.0, wait=WAIT)
        assert not result.ok
        assert result.error_code == "shed_overload"


def test_stats_and_snapshot_shape(cluster):
    cluster.translate("sum the hours", wait=WAIT)
    stats = cluster.stats()
    assert stats.submitted == 1 and stats.ok == 1
    assert stats.live_shards == 3
    assert len(stats.shards) == 3
    assert stats.shared_cache["puts"] == 1
    snap = cluster.snapshot()
    assert snap["ok_rate"] == 1.0
    assert {s["shard_id"] for s in snap["shards"]} == {0, 1, 2}
    assert snap["hot"]["total"] == 1


def test_hot_shard_report_reflects_traffic(cluster):
    for i in range(25):
        cluster.translate("sum the hours", wait=WAIT)
    report = cluster.hot_shards()
    home = cluster.router.route(make_payroll().fingerprint())
    assert report.total == 25
    assert report.hot_shards == [home]
    assert report.culprits[home][0][1] == 25


def test_retry_delay_is_jittered_and_bounded():
    import random

    cluster_cfg = ClusterConfig(
        retry_backoff=0.1, retry_backoff_cap=0.5, retry_jitter=0.5
    )
    c = ShardedCluster.__new__(ShardedCluster)
    c.config = cluster_cfg
    c._rng = random.Random(7)
    delays = [c._retry_delay(n) for n in range(1, 8) for _ in range(20)]
    assert all(d > 0 for d in delays)
    for n in range(1, 8):
        envelope = min(0.5, 0.1 * 2 ** (n - 1))
        for d in [c._retry_delay(n) for _ in range(50)]:
            assert envelope * 0.5 <= d <= envelope
    # jitter off: the envelope exactly
    c.config = ClusterConfig(
        retry_backoff=0.1, retry_backoff_cap=0.5, retry_jitter=0.0
    )
    assert c._retry_delay(1) == 0.1
    assert c._retry_delay(4) == 0.5  # capped
    assert c._retry_delay(0) == 0.0


def test_health_monitor_revives_a_suspect_shard(cluster):
    """mark_down without an actual kill: the prober sees healthy probes
    and brings the shard straight back into the route."""
    victim = cluster.shards[0]
    cluster.health.mark_down(victim.shard_id)
    assert victim.shard_id not in cluster.health.alive()
    assert victim.healthy()  # the gateway itself is fine
    wait_until(
        lambda: cluster.health.state(victim.shard_id) != DOWN, timeout=10.0
    )
    assert victim.shard_id in cluster.health.alive()
