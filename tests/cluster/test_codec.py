"""The cache-entry codec: strict, versioned, byte-exact round trips."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CODEC_VERSION,
    CacheKey,
    decode_entry,
    encode_entry,
    store_key,
)
from repro.errors import CacheCodecError

KEY = CacheKey(sentence="sum the hours", fingerprint="f" * 16, options="o" * 16)
PAYLOAD = {
    "tier": "full",
    "programs": (("=SUM(D2:D13)", 0.9375), ("=SUM(D:D)", 0.25)),
    "n_candidates": 7,
    "top_formula": "=SUM(D2:D13)",
    "elapsed": 0.0123,
    "budget_spent": 4200,
}


def test_round_trip_is_exact():
    key, payload = decode_entry(encode_entry(KEY, PAYLOAD))
    assert key == KEY
    assert payload == PAYLOAD
    # programs come back as a tuple of tuples (the in-process shape)
    assert isinstance(payload["programs"], tuple)
    assert all(isinstance(pair, tuple) for pair in payload["programs"])


def test_floats_survive_byte_for_byte():
    """Scores must round-trip to the identical double: the differential
    harness compares rankings byte-for-byte."""
    awkward = [0.1, 1 / 3, 2.5e-17, 9007199254740993.0, float(2**60) + 0.5]
    payload = dict(PAYLOAD, programs=[("=A1", s) for s in awkward])
    _, decoded = decode_entry(encode_entry(KEY, payload))
    for (_, got), want in zip(decoded["programs"], awkward):
        assert got == want and repr(got) == repr(want)


def test_encode_is_deterministic():
    assert encode_entry(KEY, PAYLOAD) == encode_entry(KEY, PAYLOAD)


def test_store_key_layout_supports_prefix_invalidation():
    flat = store_key(KEY, namespace="ns")
    assert flat.startswith(f"ns:{KEY.fingerprint}:")
    # the raw sentence never appears in the store key
    assert "sum the hours" not in flat
    # same fingerprint, different sentence -> same invalidation prefix
    other = store_key(
        CacheKey("count the rows", KEY.fingerprint, KEY.options), namespace="ns"
    )
    assert other != flat
    assert other.split(":")[:2] == flat.split(":")[:2]


def test_encode_rejects_malformed_payloads():
    for broken in [
        {},  # everything missing
        dict(PAYLOAD, extra=1),  # unexpected field
        dict(PAYLOAD, tier=None),  # wrong type
        dict(PAYLOAD, n_candidates=True),  # bool masquerading as int
        dict(PAYLOAD, programs=[("=A1",)]),  # not a pair
        dict(PAYLOAD, programs=[(1, 2.0)]),  # program not a string
        dict(PAYLOAD, programs=[("=A1", True)]),  # bool score
        "not a dict",
    ]:
        with pytest.raises(CacheCodecError):
            encode_entry(KEY, broken)


def test_decode_rejects_corrupt_blobs():
    good = encode_entry(KEY, PAYLOAD)
    for corrupt in [
        b"",
        b"\xff\xfe garbage",
        b"[1,2,3]",
        good[:-10],
        "plain string",
    ]:
        with pytest.raises(CacheCodecError):
            decode_entry(corrupt)


def test_decode_rejects_unknown_version():
    record = json.loads(encode_entry(KEY, PAYLOAD))
    record["v"] = CODEC_VERSION + 1
    with pytest.raises(CacheCodecError, match="version"):
        decode_entry(json.dumps(record).encode())


def test_decode_rejects_malformed_key():
    record = json.loads(encode_entry(KEY, PAYLOAD))
    record["key"]["fingerprint"] = 42
    with pytest.raises(CacheCodecError, match="key"):
        decode_entry(json.dumps(record).encode())


def test_codec_error_is_coded():
    try:
        decode_entry(b"nope")
    except CacheCodecError as exc:
        assert exc.code == "cache_codec_error"
    else:  # pragma: no cover
        raise AssertionError("decode_entry accepted garbage")
