"""Differential harness: sharding must never change an answer.

Runs the Table 2 test split through one plain gateway, then through a
three-shard cluster twice (a cold populating pass and a warm pass over
the shared tier), and asserts all three serialise to identical bytes —
programs, scores, tiers, top formulas, and error codes.  Routing,
failover machinery, and the codec round-trip through the shared tier are
all in the request path, so a single perturbed float or re-ranked
candidate anywhere in ``repro.cluster`` fails this test.

``REPRO_DIFF_LIMIT`` caps the number of descriptions (evenly subsampled;
default: the full test split, which is what the acceptance bar requires).
CI's quick lane sets a low limit; the slow lane and local runs take the
full split.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import ShardedCluster
from repro.dataset import SHEET_ORDER, Corpus, build_sheet
from repro.serve import GatewayConfig, TranslationGateway

pytestmark = pytest.mark.slow

_LIMIT = os.environ.get("REPRO_DIFF_LIMIT")


@pytest.fixture(scope="module")
def test_split():
    descriptions = Corpus.default().test
    if _LIMIT:
        n = int(_LIMIT)
        if 0 < n < len(descriptions):
            step = len(descriptions) / n
            descriptions = [descriptions[int(k * step)] for k in range(n)]
    return descriptions


def _serialise(result) -> bytes:
    """Everything ranking-observable about a reply, as bytes.

    Deliberately excludes serving diagnostics (shard, attempts, timing):
    the cluster adds those, and they are *supposed* to differ.
    """
    lines = [f"tier={result.tier} code={result.error_code}"]
    lines += [f"{program}\t{score!r}" for program, score in result.programs]
    lines.append(f"top_formula={result.top_formula}")
    lines.append(f"n_candidates={result.n_candidates}")
    return "\n".join(lines).encode()


def test_cluster_equals_single_gateway(test_split):
    """One gateway vs a three-shard cluster (cold and warm passes over
    the shared tier): byte-identical rankings for the whole split."""
    workbooks = {sheet_id: build_sheet(sheet_id) for sheet_id in SHEET_ORDER}

    gateway = TranslationGateway(
        config=GatewayConfig(workers=2, queue_limit=len(test_split) + 4)
    )
    try:
        pendings = [
            gateway.submit(d.text, workbooks[d.sheet_id]) for d in test_split
        ]
        baseline = [p.result(timeout=600.0) for p in pendings]
    finally:
        gateway.close(drain=True)

    cluster = ShardedCluster(
        shards=3,
        workers_per_shard=1,
        queue_limit=len(test_split) + 4,
    )
    try:
        waves = []
        for _ in range(2):
            pendings = [
                cluster.submit(d.text, workbooks[d.sheet_id])
                for d in test_split
            ]
            waves.append([p.result(timeout=600.0) for p in pendings])
        cold, warm = waves
        stats = cluster.stats()
    finally:
        cluster.close(drain=True)

    mismatches = []
    for d, b, c, w in zip(test_split, baseline, cold, warm):
        if not (_serialise(b) == _serialise(c) == _serialise(w)):
            mismatches.append((d.sheet_id, d.text))
    assert not mismatches, (
        f"{len(mismatches)}/{len(test_split)} rankings changed under "
        f"sharding, e.g. {mismatches[:3]}"
    )

    # the cluster really sharded the work: with four workbooks spread by
    # rendezvous over three shards, at least two shards served traffic
    served = {r.shard_id for r in cold if r.shard_id is not None}
    assert len(served) >= 2, f"all traffic landed on {served}"

    # the warm wave was answered by the shared tier (clean, undeadlined
    # runs all commit), regardless of which shard computed the entry
    warm_misses = [r for r in warm if not r.cached and r.ok]
    assert not warm_misses, f"{len(warm_misses)} warm repeats missed"
    assert stats.cache_hits >= sum(1 for r in warm if r.cached)
