"""Tests for the DSL textual-form parser and round-trip printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import ast, parse_expr, print_expr
from repro.dsl.parser import DslParseError
from repro.sheet import CellValue


def col(name, table=None):
    return ast.ColumnRef(name, table)


def running_example():
    return ast.Reduce(
        ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(),
        ast.And(
            ast.Compare(ast.RelOp.EQ, col("location"),
                        ast.Lit(CellValue.text("capitol hill"))),
            ast.Compare(ast.RelOp.EQ, col("title"),
                        ast.Lit(CellValue.text("barista"))),
        ),
    )


class TestParse:
    def test_reduce(self):
        expr = parse_expr("Sum(totalpay, GetTable(), True)")
        assert expr == ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), ast.TrueF()
        )

    def test_nested_filter(self):
        expr = parse_expr('And(Lt(hours, 20), Eq(title, "chef"))')
        assert isinstance(expr, ast.And)
        assert expr.left == ast.Compare(
            ast.RelOp.LT, col("hours"), ast.Lit(CellValue.number(20))
        )

    def test_quoted_multiword_value(self):
        expr = parse_expr('Eq(location, "capitol hill")')
        assert expr.right == ast.Lit(CellValue.text("capitol hill"))

    def test_currency_literal(self):
        expr = parse_expr("Lt($10, totalpay)")
        assert expr.left.value == CellValue.currency(10)

    def test_qualified_column(self):
        expr = parse_expr("PayRates.payrate")
        assert expr == col("payrate", "PayRates")

    def test_get_table_with_name(self):
        expr = parse_expr("GetTable(PayRates)")
        assert expr == ast.GetTable("PayRates")

    def test_lookup(self):
        expr = parse_expr(
            'Lookup("chef", GetTable(PayRates), title, payrate)'
        )
        assert isinstance(expr, ast.Lookup)

    def test_make_active_select(self):
        expr = parse_expr("MakeActive(SelectRows(GetTable(), True))")
        assert isinstance(expr, ast.MakeActive)

    def test_cell_ref(self):
        expr = parse_expr("Div(I2, I3)")
        assert expr.left == ast.CellRef("I2")

    def test_holes(self):
        expr = parse_expr("Sum(□C1, GetTable(), □G2)")
        holes = [n for n in expr.walk() if isinstance(n, ast.Hole)]
        assert [(h.ident, h.kind) for h in holes] == [
            (1, ast.HoleKind.COLUMN), (2, ast.HoleKind.GENERAL)
        ]

    def test_count_and_getactive(self):
        expr = parse_expr("Count(GetActive(), True)")
        assert expr == ast.Count(ast.GetActive(), ast.TrueF())

    @pytest.mark.parametrize("bad", [
        "", "Sum(", "Sum)", "Unknown(1, 2)", "Sum(a, b", "1 2",
    ])
    def test_rejects_garbage(self, bad):
        with pytest.raises(DslParseError):
            parse_expr(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("expr_factory", [
        running_example,
        lambda: ast.Count(ast.GetTable(), ast.Not(ast.Compare(
            ast.RelOp.EQ, col("title"), ast.Lit(CellValue.text("chef"))))),
        lambda: ast.BinOp(ast.BinaryOp.MULT, ast.BinOp(
            ast.BinaryOp.ADD, col("basepay"), col("otpay")),
            ast.Lit(CellValue.number(1.1))),
        lambda: ast.Lookup(col("title"), ast.GetTable("PayRates"),
                           col("title"), col("payrate")),
        lambda: ast.MakeActive(ast.SelectCells(
            (col("hours"), col("othours")), ast.GetTable(), ast.TrueF())),
        lambda: ast.Reduce(ast.ReduceOp.MAX, col("gdp"), ast.GetActive(),
                           ast.TrueF()),
        lambda: ast.Compare(ast.RelOp.GT, col("hours"), ast.Reduce(
            ast.ReduceOp.AVG, col("hours"), ast.GetTable(), ast.TrueF())),
    ])
    def test_round_trips(self, expr_factory):
        expr = expr_factory()
        assert parse_expr(print_expr(expr)) == expr

    def test_partial_expression_round_trips(self):
        expr = ast.Reduce(
            ast.ReduceOp.SUM, ast.Hole(1, ast.HoleKind.COLUMN),
            ast.GetTable(), ast.Hole(2),
        )
        assert parse_expr(print_expr(expr)) == expr

    @given(st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=40)
    def test_number_literals_round_trip(self, n):
        expr = ast.Compare(
            ast.RelOp.LT, col("hours"), ast.Lit(CellValue.number(n))
        )
        assert parse_expr(print_expr(expr)) == expr

    @given(st.sampled_from(["chef", "capitol hill", "adventure works", "a b c"]))
    def test_text_literals_round_trip(self, s):
        expr = ast.Compare(
            ast.RelOp.EQ, col("title"), ast.Lit(CellValue.text(s))
        )
        assert parse_expr(print_expr(expr)) == expr


class TestFormatSublanguage:
    def test_format_cells_round_trip(self):
        from repro.sheet import FormatFn

        program = ast.FormatCells(
            ast.FormatSpec((FormatFn.color("red"), FormatFn.bold())),
            ast.SelectRows(ast.GetTable(), ast.Compare(
                ast.RelOp.GT, col("othours"), ast.Lit(CellValue.number(0)))),
        )
        assert parse_expr(print_expr(program)) == program

    def test_get_format_round_trip(self):
        from repro.sheet import FormatFn

        source = ast.GetFormat(
            ast.FormatSpec((FormatFn.underline(False), FormatFn.font_size(14))),
            "Employees",
        )
        assert parse_expr(print_expr(source)) == source

    def test_reduce_over_format_view_round_trip(self):
        from repro.sheet import FormatFn

        program = ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"),
            ast.GetFormat(ast.FormatSpec((FormatFn.color("red"),))),
            ast.TrueF(),
        )
        assert parse_expr(print_expr(program)) == program

    def test_bad_spec_argument_rejected(self):
        with pytest.raises(DslParseError):
            parse_expr("Format(totalpay, SelectRows(GetTable(), True))")
        with pytest.raises(DslParseError):
            parse_expr("Spec(totalpay)")


class TestScriptWithFormatting:
    def test_session_with_format_step_persists(self):
        from repro.dataset import build_sheet
        from repro.session import NLyzeSession, Script
        from repro.sheet import Color

        session = NLyzeSession(build_sheet("payroll"))
        session.run("color the chef totalpay red")
        session.run("add up the red totalpay cells")
        script = Script.loads(Script.from_session(session).dumps())
        target = build_sheet("payroll")
        target.set_cursor("J2")
        results = script.apply(target)
        assert results[0].kind == "format"
        assert results[1].value == CellValue.currency(800 + 984 + 832)
        assert target.table("Employees").cell(1, 7).format.color is Color.RED
