"""Property tests for AST hash-consing and type-checker memoisation.

Interning is a pure representation change: an interned node must be
indistinguishable from a freshly built one under every observable —
equality, hash, ``str``, parser round-trip — and the memoised type checker
must agree verdict-for-verdict (including error behaviour) with a cold,
unmemoised one on arbitrary expressions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import build_sheet
from repro.dsl import TypeChecker, ast, parse_expr
from repro.dsl.holes import holes_of
from repro.errors import DslTypeError
from repro.sheet import CellValue

# -- strategies --------------------------------------------------------------
#
# Mixed well-typed / ill-typed expressions over the payroll sheet: columns
# that exist and columns that don't, literal types that match and clash —
# the checker memo must agree with the cold checker on *both* verdicts.

_COLUMNS = ["hours", "othours", "basepay", "totalpay", "location", "nosuch"]
_VALUES = [
    CellValue.number(7),
    CellValue.currency(10),
    CellValue.text("barista"),
    CellValue.text("capitol hill"),
]


def atoms():
    return st.one_of(
        st.sampled_from(_COLUMNS).map(ast.ColumnRef),
        st.sampled_from(_VALUES).map(ast.Lit),
        st.integers(min_value=1, max_value=3).map(
            lambda i: ast.Hole(i, ast.HoleKind.GENERAL)
        ),
    )


def filters(depth: int = 2):
    base = st.one_of(
        st.just(ast.TrueF()),
        st.tuples(st.sampled_from(list(ast.RelOp)), atoms(), atoms()).map(
            lambda t: ast.Compare(*t)
        ),
    )
    if depth == 0:
        return base
    sub = filters(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda t: ast.And(*t)),
        st.tuples(sub, sub).map(lambda t: ast.Or(*t)),
        sub.map(ast.Not),
    )


def expressions():
    return st.one_of(
        atoms(),
        filters(),
        st.tuples(
            st.sampled_from(list(ast.ReduceOp)),
            st.sampled_from(_COLUMNS).map(ast.ColumnRef),
            filters(1),
        ).map(lambda t: ast.Reduce(t[0], t[1], ast.GetTable(), t[2])),
        filters(1).map(lambda f: ast.Count(ast.GetTable(), f)),
        st.tuples(st.sampled_from(list(ast.BinaryOp)), atoms(), atoms()).map(
            lambda t: ast.BinOp(*t)
        ),
        filters(1).map(
            lambda f: ast.MakeActive(ast.SelectRows(ast.GetTable(), f))
        ),
    )


@pytest.fixture(autouse=True)
def _hotpath_on():
    """These properties are about the optimised mode; pin it on."""
    was = ast.hotpath_enabled()
    ast.set_hotpath(True)
    yield
    ast.set_hotpath(was)


# -- interning preserves structural semantics --------------------------------


@given(expressions())
@settings(max_examples=200)
def test_interned_equals_fresh(expr):
    interned = ast.intern(expr)
    assert interned == expr
    assert hash(interned) == hash(expr)
    assert str(interned) == str(expr)
    assert type(interned) is type(expr)


@given(expressions())
@settings(max_examples=200)
def test_interning_is_idempotent_and_canonical(expr):
    a = ast.intern(expr)
    assert ast.intern(a) is a
    # A structurally equal tree built independently lands on the same object,
    # and so does every sub-expression.
    rebuilt = parse_expr(str(expr)) if _parseable(expr) else expr
    b = ast.intern(
        rebuilt.replace_children(rebuilt.children()) if rebuilt.children()
        else rebuilt
    )
    if rebuilt == expr:
        assert b is a
        for child_a, child_b in zip(a.children(), b.children()):
            assert child_a is child_b


def _parseable(expr) -> bool:
    try:
        return parse_expr(str(expr)) == expr
    except Exception:
        return False


@given(expressions())
@settings(max_examples=200)
def test_parser_round_trip_agrees(expr):
    """Interned and fresh nodes print identically, so the parser cannot
    tell them apart."""
    try:
        fresh_round = parse_expr(str(expr))
    except Exception:
        return  # holes etc. outside the concrete syntax — nothing to check
    interned_round = parse_expr(str(ast.intern(expr)))
    assert interned_round == fresh_round


@given(expressions())
@settings(max_examples=200)
def test_holes_cache_matches_walk(expr):
    cached = holes_of(ast.intern(expr))
    assert list(cached) == [
        node for node in expr.walk() if isinstance(node, ast.Hole)
    ]
    # And the cache is stable across repeat probes.
    assert holes_of(ast.intern(expr)) == cached


# -- memoised type checker agrees with a cold one ----------------------------


@pytest.fixture(scope="module")
def workbook():
    return build_sheet("payroll")


def _verdict(checker, expr):
    """(valid, type-or-error-class) — the full observable behaviour."""
    try:
        t = checker.type_of(expr)
        return (True, str(t))
    except DslTypeError:
        return (False, DslTypeError.__name__)


@given(st.lists(expressions(), min_size=1, max_size=8))
@settings(max_examples=150)
def test_memoised_checker_agrees_with_cold(workbook, exprs):
    """One warm checker probed repeatedly (memos populated, including the
    failure memo) vs a cold checker per expression: identical verdicts,
    identical types, and ``valid``/``valid_program`` consistent with
    ``type_of``."""
    warm = TypeChecker(workbook, content_check=True)
    for expr in exprs:
        expr = ast.intern(expr)
        cold = TypeChecker(workbook, content_check=True)
        first = _verdict(warm, expr)
        again = _verdict(warm, expr)  # cached probe (success or failure memo)
        assert first == again == _verdict(cold, expr)
        assert warm.valid(expr) == cold.valid(expr) == first[0]
        assert warm.valid(expr) == warm.valid(expr)
        assert (
            warm.valid_program(expr)
            == cold.valid_program(expr)
            == warm.valid_program(expr)
        )


@given(expressions())
@settings(max_examples=100)
def test_memoised_checker_agrees_across_modes(workbook, expr):
    """The same verdicts with the hot path disabled entirely."""
    expr_interned = ast.intern(expr)
    on = _verdict(TypeChecker(workbook, content_check=True), expr_interned)
    ast.set_hotpath(False)
    try:
        off = _verdict(TypeChecker(workbook, content_check=True), expr)
    finally:
        ast.set_hotpath(True)
    assert on == off
