"""Unit tests for AST structure, traversal, and holes."""

import pytest

from repro.dsl import ast
from repro.dsl.holes import (
    consistent,
    fresh_idents,
    hole_idents,
    holes_of,
    is_complete,
    renumber,
    substitute_unchecked,
)
from repro.errors import HoleError
from repro.sheet import CellValue, FormatFn


def sum_with_hole() -> ast.Reduce:
    return ast.Reduce(
        ast.ReduceOp.SUM,
        ast.ColumnRef("totalpay"),
        ast.GetTable(),
        ast.Hole(2),
    )


def lt_filter() -> ast.Compare:
    return ast.Compare(
        ast.RelOp.LT, ast.ColumnRef("hours"), ast.Lit(CellValue.number(20))
    )


class TestStructure:
    def test_expressions_are_hashable_and_equal_by_structure(self):
        assert sum_with_hole() == sum_with_hole()
        assert hash(sum_with_hole()) == hash(sum_with_hole())
        assert len({sum_with_hole(), sum_with_hole()}) == 1

    def test_children_in_order(self):
        e = sum_with_hole()
        kinds = [type(c).__name__ for c in e.children()]
        assert kinds == ["ColumnRef", "GetTable", "Hole"]

    def test_replace_children_rebuilds(self):
        e = lt_filter()
        swapped = e.replace_children((e.right, e.left))
        assert isinstance(swapped.left, ast.Lit)
        assert isinstance(swapped.right, ast.ColumnRef)

    def test_replace_children_wrong_arity(self):
        with pytest.raises((ValueError, IndexError)):
            lt_filter().replace_children((ast.TrueF(),))

    def test_walk_preorder(self):
        e = ast.And(lt_filter(), ast.TrueF())
        names = [type(n).__name__ for n in e.walk()]
        assert names[0] == "And"
        assert "Compare" in names and "TrueF" in names

    def test_atoms(self):
        assert ast.ColumnRef("hours").is_atom
        assert not lt_filter().is_atom

    def test_select_cells_tuple_children(self):
        q = ast.SelectCells(
            (ast.ColumnRef("a"), ast.ColumnRef("b")),
            ast.GetTable(),
            ast.TrueF(),
        )
        assert len(q.children()) == 4
        rebuilt = q.replace_children(q.children())
        assert rebuilt == q

    def test_str_rendering(self):
        assert str(sum_with_hole()) == "Sum(totalpay, GetTable(), □G2)"
        assert str(lt_filter()) == "Lt(hours, 20)"

    def test_format_spec_str(self):
        spec = ast.FormatSpec((FormatFn.color("red"),))
        assert "red" in str(spec)


class TestHoles:
    def test_holes_of(self):
        e = ast.BinOp(ast.BinaryOp.ADD, ast.Hole(1), ast.Hole(2, ast.HoleKind.LITERAL))
        assert [h.ident for h in holes_of(e)] == [1, 2]
        assert hole_idents(e) == {1, 2}

    def test_is_complete(self):
        assert is_complete(lt_filter())
        assert not is_complete(sum_with_hole())

    def test_consistency_general(self):
        assert consistent(lt_filter(), ast.HoleKind.GENERAL)

    def test_consistency_literal(self):
        num = ast.Lit(CellValue.number(5))
        cur = ast.Lit(CellValue.currency(5))
        txt = ast.Lit(CellValue.text("chef"))
        assert consistent(num, ast.HoleKind.LITERAL)
        assert consistent(cur, ast.HoleKind.LITERAL)
        assert consistent(ast.CellRef("D2"), ast.HoleKind.LITERAL)
        assert not consistent(txt, ast.HoleKind.LITERAL)

    def test_consistency_column(self):
        assert consistent(ast.ColumnRef("hours"), ast.HoleKind.COLUMN)
        assert not consistent(ast.Lit(CellValue.text("x")), ast.HoleKind.COLUMN)

    def test_consistency_value(self):
        assert consistent(ast.Lit(CellValue.text("chef")), ast.HoleKind.VALUE)
        assert not consistent(ast.Lit(CellValue.number(5)), ast.HoleKind.VALUE)
        assert not consistent(ast.ColumnRef("hours"), ast.HoleKind.VALUE)

    def test_substitute_unchecked(self):
        filled = substitute_unchecked(sum_with_hole(), {2: lt_filter()})
        assert is_complete(filled)
        assert isinstance(filled.condition, ast.Compare)

    def test_substitute_unchecked_leaves_unbound(self):
        still = substitute_unchecked(sum_with_hole(), {99: lt_filter()})
        assert not is_complete(still)

    def test_fresh_idents(self):
        assert fresh_idents([sum_with_hole()]) == 1
        assert fresh_idents([ast.Hole(1), ast.Hole(2)]) == 3

    def test_renumber(self):
        e = renumber(sum_with_hole(), 10)
        assert hole_idents(e) == {12}


class TestCheckedSubstitution:
    def test_valid_substitution(self, payroll):
        from repro.dsl import TypeChecker
        from repro.dsl.holes import substitute

        checker = TypeChecker(payroll)
        result = substitute(sum_with_hole(), {2: lt_filter()}, checker)
        assert result is not None
        assert is_complete(result)

    def test_type_invalid_substitution_returns_none(self, payroll):
        from repro.dsl import TypeChecker
        from repro.dsl.holes import substitute

        checker = TypeChecker(payroll)
        bad = ast.Lit(CellValue.number(3))  # a number is not a filter
        assert substitute(sum_with_hole(), {2: bad}, checker) is None

    def test_restriction_violation_returns_none(self, payroll):
        from repro.dsl import TypeChecker
        from repro.dsl.holes import substitute

        checker = TypeChecker(payroll)
        e = ast.Compare(
            ast.RelOp.EQ,
            ast.Hole(1, ast.HoleKind.COLUMN),
            ast.Lit(CellValue.text("chef")),
        )
        assert substitute(e, {1: ast.Lit(CellValue.text("x"))}, checker) is None

    def test_unknown_hole_raises(self, payroll):
        from repro.dsl import TypeChecker
        from repro.dsl.holes import substitute

        checker = TypeChecker(payroll)
        with pytest.raises(HoleError):
            substitute(sum_with_hole(), {7: lt_filter()}, checker)
