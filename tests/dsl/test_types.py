"""Unit tests for the DSL type system (the paper's ``Valid``)."""

import pytest

from repro.dsl import TypeChecker, ast
from repro.dsl.types import Kind
from repro.sheet import CellValue, FormatFn, ValueType


@pytest.fixture
def tc(payroll):
    return TypeChecker(payroll)


def col(name, table=None):
    return ast.ColumnRef(name, table)


def num(x):
    return ast.Lit(CellValue.number(x))


def cur(x):
    return ast.Lit(CellValue.currency(x))


def text(s):
    return ast.Lit(CellValue.text(s))


class TestAtoms:
    def test_literals(self, tc):
        assert tc.type_of(num(5)).elem is ValueType.NUMBER
        assert tc.type_of(cur(5)).elem is ValueType.CURRENCY
        assert tc.type_of(text("chef")).elem is ValueType.TEXT

    def test_column_in_default_scope(self, tc):
        t = tc.type_of(col("hours"))
        assert t.kind is Kind.COLUMN
        assert t.elem is ValueType.NUMBER
        assert t.table == "employees"

    def test_column_with_explicit_table(self, tc):
        t = tc.type_of(col("payrate", "PayRates"))
        assert t.table == "payrates"
        assert t.elem is ValueType.CURRENCY

    def test_unknown_column_invalid(self, tc):
        assert not tc.valid(col("salary"))

    def test_cell_ref_types_from_contents(self, tc, payroll):
        payroll.set_value("J9", CellValue.currency(5))
        tc2 = TypeChecker(payroll)
        assert tc2.type_of(ast.CellRef("J9")).elem is ValueType.CURRENCY

    def test_empty_cell_ref_defaults_to_number(self, tc):
        assert tc.type_of(ast.CellRef("Z99")).elem is ValueType.NUMBER

    def test_hole_is_any(self, tc):
        assert tc.type_of(ast.Hole(1)).kind is Kind.ANY


class TestComparisons:
    def test_currency_literal_disambiguation(self, tc):
        # The paper's §3.2 example: Lt(5, totalpay) invalid, Lt($10, totalpay) valid.
        assert not tc.valid(ast.Compare(ast.RelOp.LT, num(5), col("totalpay")))
        assert tc.valid(ast.Compare(ast.RelOp.LT, cur(10), col("totalpay")))

    def test_number_column_vs_number(self, tc):
        assert tc.valid(ast.Compare(ast.RelOp.LT, col("hours"), num(20)))

    def test_eq_text(self, tc):
        assert tc.valid(ast.Compare(ast.RelOp.EQ, col("title"), text("chef")))

    def test_eq_mismatched_types_invalid(self, tc):
        assert not tc.valid(ast.Compare(ast.RelOp.EQ, col("title"), num(5)))

    def test_text_ordering_invalid(self, tc):
        assert not tc.valid(ast.Compare(ast.RelOp.LT, col("title"), text("a")))

    def test_column_to_column(self, tc):
        assert tc.valid(ast.Compare(ast.RelOp.GT, col("hours"), col("othours")))

    def test_two_scalars_invalid(self, tc):
        assert not tc.valid(ast.Compare(ast.RelOp.LT, num(1), num(2)))

    def test_scalar_vs_nested_reduce(self, tc):
        avg = ast.Reduce(ast.ReduceOp.AVG, col("hours"), ast.GetTable(), ast.TrueF())
        assert tc.valid(ast.Compare(ast.RelOp.GT, col("hours"), avg))

    def test_hole_side_is_permissive(self, tc):
        assert tc.valid(ast.Compare(ast.RelOp.EQ, ast.Hole(1), text("chef")))


class TestBooleans:
    def test_connectives(self, tc):
        f = ast.Compare(ast.RelOp.EQ, col("title"), text("chef"))
        assert tc.valid(ast.And(f, ast.Not(f)))
        assert tc.valid(ast.Or(f, ast.TrueF()))

    def test_non_filter_operand_invalid(self, tc):
        assert not tc.valid(ast.And(ast.TrueF(), num(3)))


class TestReductions:
    def test_sum_currency_column(self, tc):
        e = ast.Reduce(ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), ast.TrueF())
        assert tc.type_of(e).elem is ValueType.CURRENCY

    def test_sum_text_column_invalid(self, tc):
        e = ast.Reduce(ast.ReduceOp.SUM, col("title"), ast.GetTable(), ast.TrueF())
        assert not tc.valid(e)

    def test_reduce_filter_scoped_to_source_table(self, tc):
        # payrate filter over the PayRates table scope resolves there.
        e = ast.Reduce(
            ast.ReduceOp.MAX,
            col("payrate"),
            ast.GetTable("PayRates"),
            ast.Compare(ast.RelOp.EQ, col("title"), text("chef")),
        )
        assert tc.valid(e)

    def test_count_is_number(self, tc):
        e = ast.Count(ast.GetTable(), ast.TrueF())
        assert tc.type_of(e).elem is ValueType.NUMBER

    def test_reduce_over_hole_source(self, tc):
        e = ast.Reduce(ast.ReduceOp.SUM, col("hours"), ast.Hole(1), ast.TrueF())
        assert tc.valid(e)


class TestArithmetic:
    def test_number_plus_number(self, tc):
        assert tc.type_of(ast.BinOp(ast.BinaryOp.ADD, num(1), num(2))).elem is ValueType.NUMBER

    def test_currency_plus_currency(self, tc):
        t = tc.type_of(ast.BinOp(ast.BinaryOp.ADD, cur(1), cur(2)))
        assert t.elem is ValueType.CURRENCY

    def test_currency_plus_number_invalid(self, tc):
        assert not tc.valid(ast.BinOp(ast.BinaryOp.ADD, cur(1), num(2)))

    def test_currency_times_currency_invalid(self, tc):
        # The paper's headline type rule.
        assert not tc.valid(ast.BinOp(ast.BinaryOp.MULT, cur(1), cur(2)))

    def test_currency_times_number(self, tc):
        t = tc.type_of(ast.BinOp(ast.BinaryOp.MULT, cur(1), num(2)))
        assert t.elem is ValueType.CURRENCY

    def test_currency_div_currency_is_number(self, tc):
        t = tc.type_of(ast.BinOp(ast.BinaryOp.DIV, cur(1), cur(2)))
        assert t.elem is ValueType.NUMBER

    def test_number_div_currency_invalid(self, tc):
        assert not tc.valid(ast.BinOp(ast.BinaryOp.DIV, num(1), cur(2)))

    def test_arith_on_text_invalid(self, tc):
        assert not tc.valid(ast.BinOp(ast.BinaryOp.ADD, text("a"), num(1)))

    def test_vector_plus_vector(self, tc):
        t = tc.type_of(ast.BinOp(ast.BinaryOp.ADD, col("hours"), col("othours")))
        assert t.kind is Kind.VECTOR
        assert t.elem is ValueType.NUMBER

    def test_vector_times_scalar(self, tc):
        t = tc.type_of(ast.BinOp(ast.BinaryOp.MULT, col("payrate"), num(2)))
        assert t.kind is Kind.VECTOR
        assert t.elem is ValueType.CURRENCY

    def test_cross_table_vectors_invalid(self, tc):
        e = ast.BinOp(
            ast.BinaryOp.ADD, col("payrate"), col("payrate", "PayRates")
        )
        assert not tc.valid(e)


class TestLookup:
    def test_scalar_lookup(self, tc):
        e = ast.Lookup(
            text("chef"),
            ast.GetTable("PayRates"),
            col("title"),
            col("payrate"),
        )
        t = tc.type_of(e)
        assert t.kind is Kind.SCALAR
        assert t.elem is ValueType.CURRENCY

    def test_vector_lookup_is_join(self, tc):
        e = ast.Lookup(
            col("title"),
            ast.GetTable("PayRates"),
            col("title"),
            col("payrate"),
        )
        t = tc.type_of(e)
        assert t.kind is Kind.VECTOR
        assert t.table == "employees"

    def test_needle_key_mismatch_invalid(self, tc):
        e = ast.Lookup(
            num(5),
            ast.GetTable("PayRates"),
            col("title"),
            col("payrate"),
        )
        assert not tc.valid(e)


class TestQueriesAndPrograms:
    def test_select_rows(self, tc):
        q = ast.SelectRows(ast.GetTable(), ast.TrueF())
        assert tc.type_of(q).kind is Kind.QUERY

    def test_select_cells_columns_scoped(self, tc):
        q = ast.SelectCells((col("hours"),), ast.GetTable(), ast.TrueF())
        assert tc.valid(q)
        bad = ast.SelectCells((col("nope"),), ast.GetTable(), ast.TrueF())
        assert not tc.valid(bad)

    def test_select_cells_requires_columns(self, tc):
        assert not tc.valid(ast.SelectCells((), ast.GetTable(), ast.TrueF()))

    def test_make_active(self, tc):
        p = ast.MakeActive(ast.SelectRows(ast.GetTable(), ast.TrueF()))
        assert tc.type_of(p).kind is Kind.PROGRAM

    def test_format_program(self, tc):
        spec = ast.FormatSpec((FormatFn.color("red"),))
        p = ast.FormatCells(spec, ast.SelectRows(ast.GetTable(), ast.TrueF()))
        assert tc.valid(p)

    def test_empty_format_spec_invalid(self, tc):
        assert not tc.valid(ast.FormatSpec(()))

    def test_get_format_row_source(self, tc):
        rs = ast.GetFormat(ast.FormatSpec((FormatFn.color("red"),)))
        assert tc.type_of(rs).kind is Kind.ROWSET

    def test_get_active_row_source(self, tc):
        assert tc.type_of(ast.GetActive()).table == "employees"

    def test_unknown_table_invalid(self, tc):
        assert not tc.valid(ast.GetTable("Missing"))

    def test_valid_program_rejects_holes(self, tc):
        e = ast.Reduce(ast.ReduceOp.SUM, col("hours"), ast.GetTable(), ast.Hole(1))
        assert tc.valid(e)
        assert not tc.valid_program(e)

    def test_valid_program_accepts_bare_column(self, tc):
        assert tc.valid_program(col("hours"))
