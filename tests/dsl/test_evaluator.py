"""Integration tests for the DSL interpreter over the payroll workbook."""

import pytest

from repro.dsl import Evaluator, ast
from repro.errors import EvaluationError
from repro.sheet import CellValue, Color, FormatFn, ValueType


@pytest.fixture
def ev(payroll):
    return Evaluator(payroll)


def col(name, table=None):
    return ast.ColumnRef(name, table)


def num(x):
    return ast.Lit(CellValue.number(x))


def cur(x):
    return ast.Lit(CellValue.currency(x))


def text(s):
    return ast.Lit(CellValue.text(s))


def eq(c, v):
    return ast.Compare(ast.RelOp.EQ, col(c), text(v))


class TestReduce:
    def test_conditional_sum(self, ev):
        # The paper's running example on our 6-row payroll.
        p = ast.Reduce(
            ast.ReduceOp.SUM,
            col("totalpay"),
            ast.GetTable(),
            ast.And(eq("location", "capitol hill"), eq("title", "barista")),
        )
        r = ev.run(p, place=False)
        assert r.value == CellValue.currency(396 + 492)

    def test_unconditional_sum(self, ev):
        p = ast.Reduce(ast.ReduceOp.SUM, col("hours"), ast.GetTable(), ast.TrueF())
        assert ev.run(p, place=False).value.payload == 30 + 40 + 25 + 18 + 35 + 38

    def test_avg(self, ev):
        p = ast.Reduce(
            ast.ReduceOp.AVG,
            col("hours"),
            ast.GetTable(),
            eq("location", "capitol hill"),
        )
        assert ev.run(p, place=False).value.payload == (30 + 40 + 35) / 3

    def test_min_max(self, ev):
        mn = ast.Reduce(ast.ReduceOp.MIN, col("hours"), ast.GetTable(), ast.TrueF())
        mx = ast.Reduce(ast.ReduceOp.MAX, col("hours"), ast.GetTable(), ast.TrueF())
        assert ev.run(mn, place=False).value.payload == 18
        assert ev.run(mx, place=False).value.payload == 40

    def test_sum_currency_keeps_unit(self, ev):
        p = ast.Reduce(ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), ast.TrueF())
        assert ev.run(p, place=False).value.type is ValueType.CURRENCY

    def test_sum_empty_filter_is_zero(self, ev):
        p = ast.Reduce(
            ast.ReduceOp.SUM, col("hours"), ast.GetTable(), eq("title", "astronaut")
        )
        assert ev.run(p, place=False).value.payload == 0

    def test_avg_empty_filter_raises(self, ev):
        p = ast.Reduce(
            ast.ReduceOp.AVG, col("hours"), ast.GetTable(), eq("title", "astronaut")
        )
        with pytest.raises(EvaluationError):
            ev.run(p, place=False)

    def test_numeric_comparison_filter(self, ev):
        p = ast.Reduce(
            ast.ReduceOp.SUM,
            col("totalpay"),
            ast.GetTable(),
            ast.Compare(ast.RelOp.LT, col("hours"), num(20)),
        )
        assert ev.run(p, place=False).value == CellValue.currency(198)

    def test_nested_reduce_in_comparison(self, ev):
        # "which employees work more than the average hours" — filter side.
        avg = ast.Reduce(ast.ReduceOp.AVG, col("hours"), ast.GetTable(), ast.TrueF())
        p = ast.Count(
            ast.GetTable(), ast.Compare(ast.RelOp.GT, col("hours"), avg)
        )
        # mean hours = 31; those above: 40, 35, 38 -> 3 employees
        assert ev.run(p, place=False).value.payload == 3


class TestCount:
    def test_count_all(self, ev):
        p = ast.Count(ast.GetTable(), ast.TrueF())
        assert ev.run(p, place=False).value.payload == 6

    def test_count_with_negation(self, ev):
        p = ast.Count(ast.GetTable(), ast.Not(eq("location", "capitol hill")))
        assert ev.run(p, place=False).value.payload == 3

    def test_count_with_disjunction(self, ev):
        p = ast.Count(
            ast.GetTable(), ast.Or(eq("title", "chef"), eq("title", "cashier"))
        )
        assert ev.run(p, place=False).value.payload == 3


class TestArithmetic:
    def test_scalar_chain(self, ev):
        p = ast.BinOp(
            ast.BinaryOp.MULT,
            ast.BinOp(ast.BinaryOp.ADD, num(2), num(3)),
            num(4),
        )
        assert ev.run(p, place=False).value.payload == 20

    def test_division_by_zero(self, ev):
        p = ast.BinOp(ast.BinaryOp.DIV, num(1), num(0))
        with pytest.raises(EvaluationError):
            ev.run(p, place=False)

    def test_cell_refs(self, ev, payroll):
        payroll.set_value("J8", CellValue.number(10))
        payroll.set_value("J9", CellValue.number(4))
        p = ast.BinOp(ast.BinaryOp.DIV, ast.CellRef("J8"), ast.CellRef("J9"))
        assert ev.run(p, place=False).value.payload == 2.5

    def test_empty_cell_ref_raises(self, ev):
        p = ast.BinOp(ast.BinaryOp.ADD, ast.CellRef("Z99"), num(1))
        with pytest.raises(EvaluationError):
            ev.run(p, place=False)

    def test_vector_addition(self, ev):
        p = ast.BinOp(ast.BinaryOp.ADD, col("hours"), col("othours"))
        r = ev.run(p, place=False)
        assert [v.payload for v in r.values] == [32, 40, 30, 18, 39, 44]

    def test_vector_scalar_broadcast(self, ev):
        p = ast.BinOp(ast.BinaryOp.MULT, col("payrate"), num(2))
        r = ev.run(p, place=False)
        assert r.values[0] == CellValue.currency(24)

    def test_scalar_vector_broadcast(self, ev):
        p = ast.BinOp(ast.BinaryOp.ADD, num(1), col("hours"))
        r = ev.run(p, place=False)
        assert r.values[0].payload == 31


class TestLookup:
    def test_scalar_lookup(self, ev):
        p = ast.Lookup(
            text("chef"), ast.GetTable("PayRates"), col("title"), col("payrate")
        )
        assert ev.run(p, place=False).value == CellValue.currency(20)

    def test_lookup_miss_raises(self, ev):
        p = ast.Lookup(
            text("astronaut"),
            ast.GetTable("PayRates"),
            col("title"),
            col("payrate"),
        )
        with pytest.raises(EvaluationError):
            ev.run(p, place=False)

    def test_vector_lookup_join(self, ev):
        # For each employee look up the PayRates rate by title.
        p = ast.Lookup(
            col("title"), ast.GetTable("PayRates"), col("title"), col("payrate")
        )
        r = ev.run(p, place=False)
        assert [v.payload for v in r.values] == [12, 20, 12, 11, 12, 21 - 1]

    def test_join_composes_with_map(self, ev):
        # "for each employee lookup the payrate and multiply by hours"
        join = ast.Lookup(
            col("title"), ast.GetTable("PayRates"), col("title"), col("payrate")
        )
        p = ast.BinOp(ast.BinaryOp.MULT, join, col("hours"))
        r = ev.run(p, place=False)
        assert r.values[0] == CellValue.currency(12 * 30)


class TestPlacement:
    def test_scalar_placed_at_cursor(self, ev, payroll):
        payroll.set_cursor("J2")
        p = ast.Count(ast.GetTable(), ast.TrueF())
        r = ev.run(p)
        assert [a.to_a1() for a in r.addresses] == ["J2"]
        assert payroll.get_value("J2").payload == 6

    def test_vector_placed_downward(self, ev, payroll):
        payroll.set_cursor("K2")
        p = ast.BinOp(ast.BinaryOp.ADD, col("hours"), col("othours"))
        r = ev.run(p)
        assert len(r.addresses) == 6
        assert payroll.get_value("K2").payload == 32


class TestSelectionsAndFormatting:
    def test_make_active_selects_rows(self, ev, payroll):
        p = ast.MakeActive(
            ast.SelectRows(ast.GetTable(), eq("location", "queen anne"))
        )
        r = ev.run(p)
        emp = payroll.table("Employees")
        assert payroll.selected_row_indices(emp) == [2, 3]
        assert r.kind == "selection"

    def test_select_cells_projects_columns(self, ev, payroll):
        p = ast.MakeActive(
            ast.SelectCells((col("totalpay"),), ast.GetTable(), eq("title", "chef"))
        )
        r = ev.run(p)
        assert len(r.addresses) == 2  # two chefs, one column

    def test_get_active_feeds_next_step(self, ev, payroll):
        # Step 1: select capitol hill baristas; step 2: sum totalpay of selection.
        ev.run(
            ast.MakeActive(
                ast.SelectRows(
                    ast.GetTable(),
                    ast.And(eq("location", "capitol hill"), eq("title", "barista")),
                )
            )
        )
        p = ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetActive(), ast.TrueF()
        )
        assert ev.run(p, place=False).value == CellValue.currency(888)

    def test_format_then_get_format(self, ev, payroll):
        spec = ast.FormatSpec((FormatFn.color("red"),))
        ev.run(
            ast.FormatCells(
                spec,
                ast.SelectCells((col("totalpay"),), ast.GetTable(), eq("title", "chef")),
            )
        )
        emp = payroll.table("Employees")
        assert emp.cell(1, 7).format.color is Color.RED
        # "add up all the values in the red cells"
        p = ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetFormat(spec), ast.TrueF()
        )
        assert ev.run(p, place=False).value == CellValue.currency(800 + 984)

    def test_format_extends_view(self, ev, payroll):
        # Color chefs then baristas; GetFormat sees the union.
        spec = ast.FormatSpec((FormatFn.color("red"),))
        for title in ("chef", "barista"):
            ev.run(
                ast.FormatCells(
                    spec,
                    ast.SelectCells(
                        (col("totalpay"),), ast.GetTable(), eq("title", title)
                    ),
                )
            )
        p = ast.Count(ast.GetFormat(spec), ast.TrueF())
        assert ev.run(p, place=False).value.payload == 5


class TestGuards:
    def test_program_with_hole_rejected(self, ev):
        p = ast.Reduce(ast.ReduceOp.SUM, col("hours"), ast.GetTable(), ast.Hole(1))
        with pytest.raises(EvaluationError):
            ev.run(p)

    def test_ill_typed_program_rejected(self, ev):
        p = ast.BinOp(ast.BinaryOp.MULT, cur(1), cur(2))
        with pytest.raises(EvaluationError):
            ev.run(p)
