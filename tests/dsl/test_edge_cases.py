"""Edge-case and failure-injection tests across the DSL layer."""

import pytest

from repro.dsl import Evaluator, ExcelEmitter, TypeChecker, ast, paraphrase
from repro.errors import EvaluationError
from repro.sheet import CellValue, Color, FormatFn, Table, ValueType, Workbook


def col(name, table=None):
    return ast.ColumnRef(name, table)


def num(x):
    return ast.Lit(CellValue.number(x))


class TestEvaluatorErrorPaths:
    def test_eval_query_on_non_query(self, payroll):
        with pytest.raises(EvaluationError):
            Evaluator(payroll).eval_query(ast.TrueF())

    def test_eval_row_source_on_non_source(self, payroll):
        with pytest.raises(EvaluationError):
            Evaluator(payroll).eval_row_source(num(1))

    def test_eval_scalar_on_filter(self, payroll):
        with pytest.raises(EvaluationError):
            Evaluator(payroll).eval_scalar(ast.TrueF(), "employees")

    def test_get_active_without_selection_gives_empty(self, payroll):
        payroll.clear_selection()
        p = ast.Count(ast.GetActive(), ast.TrueF())
        assert Evaluator(payroll).run(p, place=False).value.payload == 0

    def test_get_format_without_matches_gives_empty(self, payroll):
        spec = ast.FormatSpec((FormatFn.color(Color.PINK),))
        p = ast.Count(ast.GetFormat(spec), ast.TrueF())
        assert Evaluator(payroll).run(p, place=False).value.payload == 0

    def test_filter_on_empty_cell_is_false(self):
        wb = Workbook()
        wb.add_table(Table.from_data(
            "T", ["name", "x"],
            [["a", 1], ["b", None]],
            types=[ValueType.TEXT, ValueType.NUMBER],
        ))
        p = ast.Count(
            ast.GetTable(),
            ast.Compare(ast.RelOp.GT, col("x"), num(0)),
        )
        assert Evaluator(wb).run(p, place=False).value.payload == 1

    def test_sum_skips_empty_cells(self):
        wb = Workbook()
        wb.add_table(Table.from_data(
            "T", ["x"], [[1], [None], [3]], types=[ValueType.NUMBER],
        ))
        p = ast.Reduce(ast.ReduceOp.SUM, col("x"), ast.GetTable(), ast.TrueF())
        assert Evaluator(wb).run(p, place=False).value.payload == 4

    def test_run_without_cursor_returns_value_unplaced(self):
        wb = Workbook()
        wb.add_table(Table.from_data("T", ["x"], [[1]], types=[ValueType.NUMBER]))
        p = ast.Count(ast.GetTable(), ast.TrueF())
        result = Evaluator(wb).run(p)  # no cursor set
        assert result.value.payload == 1
        assert result.addresses == []

    def test_empty_table_reduce(self):
        from repro.sheet import Column

        wb = Workbook()
        wb.add_table(Table("T", [Column("x", ValueType.NUMBER)]))
        p = ast.Reduce(ast.ReduceOp.SUM, col("x"), ast.GetTable(), ast.TrueF())
        assert Evaluator(wb).run(p, place=False).value.payload == 0


class TestProgramResultDisplay:
    def test_selection_display(self, payroll):
        p = ast.MakeActive(ast.SelectRows(ast.GetTable(), ast.TrueF()))
        result = Evaluator(payroll).run(p)
        assert "selected" in result.display()

    def test_format_display(self, payroll):
        p = ast.FormatCells(
            ast.FormatSpec((FormatFn.bold(),)),
            ast.SelectRows(ast.GetTable(), ast.TrueF()),
        )
        result = Evaluator(payroll).run(p)
        assert "formatted" in result.display()

    def test_vector_display(self, payroll):
        p = ast.BinOp(ast.BinaryOp.ADD, col("hours"), col("othours"))
        result = Evaluator(payroll).run(p, place=False)
        assert result.display().startswith("[")


class TestExcelEmitterEdges:
    def test_empty_table_range(self):
        from repro.sheet import Column

        wb = Workbook()
        wb.add_table(Table("T", [Column("x", ValueType.NUMBER)]))
        p = ast.Reduce(ast.ReduceOp.SUM, col("x"), ast.GetTable(), ast.TrueF())
        assert ExcelEmitter(wb).emit(p) == "=SUM(A2)"

    def test_emit_unknown_expression_rejected(self, payroll):
        with pytest.raises(EvaluationError):
            ExcelEmitter(payroll).emit(ast.TrueF())

    def test_select_cells_description(self, payroll):
        p = ast.MakeActive(ast.SelectCells(
            (col("hours"), col("othours")), ast.GetTable(), ast.TrueF(),
        ))
        out = ExcelEmitter(payroll).emit(p)
        assert out.startswith("[select hours, othours of Employees")

    def test_nested_or_inside_and_criteria_fallback(self, payroll):
        chef = ast.Compare(ast.RelOp.EQ, col("title"),
                           ast.Lit(CellValue.text("chef")))
        barista = ast.Compare(ast.RelOp.EQ, col("title"),
                              ast.Lit(CellValue.text("barista")))
        hours = ast.Compare(ast.RelOp.GT, col("hours"), num(20))
        p = ast.Reduce(
            ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(),
            ast.And(ast.Or(chef, barista), hours),
        )
        out = ExcelEmitter(payroll).emit(p)
        assert out.startswith("=SUMPRODUCT(")


class TestParaphraseEdges:
    def test_count_unconditional(self):
        assert paraphrase(ast.Count(ast.GetTable(), ast.TrueF())) == (
            "count the rows"
        )

    def test_double_negation_renders(self):
        inner = ast.Compare(ast.RelOp.GT, col("hours"), num(1))
        text = paraphrase(ast.Count(ast.GetTable(), ast.Not(ast.Not(inner))))
        assert "not (" in text

    def test_select_cells_paraphrase(self):
        p = ast.MakeActive(ast.SelectCells(
            (col("hours"),), ast.GetTable(), ast.TrueF(),
        ))
        assert paraphrase(p) == "select the hours cells"

    def test_table_qualified_column(self):
        assert paraphrase(col("payrate", "PayRates")) == "PayRates payrate"


class TestTypeCheckerCaching:
    def test_cache_consistency_across_scopes(self, payroll):
        checker = TypeChecker(payroll)
        # `title` resolves in both tables; scope decides which
        t_default = checker.type_of(col("title"), "employees")
        t_rates = checker.type_of(col("title"), "payrates")
        assert t_default.table == "employees"
        assert t_rates.table == "payrates"

    def test_content_check_toggle(self, payroll):
        loose = TypeChecker(payroll, content_check=False)
        strict = TypeChecker(payroll, content_check=True)
        bogus = ast.Compare(
            ast.RelOp.EQ, col("title"), ast.Lit(CellValue.text("capitol hill"))
        )
        assert loose.valid(bogus)
        assert not strict.valid(bogus)
