"""Tests for the Excel formula emitter and the English paraphraser."""

import pytest

from repro.dsl import ExcelEmitter, ast, paraphrase
from repro.sheet import CellValue, FormatFn


@pytest.fixture
def emitter(payroll):
    return ExcelEmitter(payroll)


def col(name, table=None):
    return ast.ColumnRef(name, table)


def num(x):
    return ast.Lit(CellValue.number(x))


def text(s):
    return ast.Lit(CellValue.text(s))


def eq(c, v):
    return ast.Compare(ast.RelOp.EQ, col(c), text(v))


def running_example():
    return ast.Reduce(
        ast.ReduceOp.SUM,
        col("totalpay"),
        ast.GetTable(),
        ast.And(eq("location", "capitol hill"), eq("title", "barista")),
    )


class TestExcel:
    def test_sumifs_for_conjunctions(self, emitter):
        f = emitter.emit(running_example())
        assert f == '=SUMIFS(H2:H7, B2:B7, "capitol hill", C2:C7, "barista")'

    def test_plain_sum(self, emitter):
        p = ast.Reduce(ast.ReduceOp.SUM, col("hours"), ast.GetTable(), ast.TrueF())
        assert emitter.emit(p) == "=SUM(D2:D7)"

    def test_numeric_criterion(self, emitter):
        p = ast.Reduce(
            ast.ReduceOp.SUM,
            col("totalpay"),
            ast.GetTable(),
            ast.Compare(ast.RelOp.LT, col("hours"), num(20)),
        )
        assert emitter.emit(p) == '=SUMIFS(H2:H7, D2:D7, "<20")'

    def test_flipped_comparison_criterion(self, emitter):
        p = ast.Count(
            ast.GetTable(),
            ast.Compare(ast.RelOp.LT, num(20), col("hours")),
        )
        assert emitter.emit(p) == '=COUNTIFS(D2:D7, ">20")'

    def test_disjunction_falls_back_to_sumproduct(self, emitter):
        p = ast.Reduce(
            ast.ReduceOp.SUM,
            col("totalpay"),
            ast.GetTable(),
            ast.Or(eq("title", "chef"), eq("title", "barista")),
        )
        f = emitter.emit(p)
        assert f.startswith("=SUMPRODUCT(")
        assert '(C2:C7="chef")' in f

    def test_negation_in_count(self, emitter):
        p = ast.Count(ast.GetTable(), ast.Not(eq("title", "chef")))
        f = emitter.emit(p)
        assert "1-" in f and f.startswith("=SUMPRODUCT")

    def test_column_vs_column_condition(self, emitter):
        p = ast.Count(
            ast.GetTable(),
            ast.Compare(ast.RelOp.GT, col("othours"), col("hours")),
        )
        assert "E2:E7>D2:D7" in emitter.emit(p)

    def test_count_all_uses_counta(self, emitter):
        p = ast.Count(ast.GetTable(), ast.TrueF())
        assert emitter.emit(p) == "=COUNTA(A2:A7)"

    def test_avg_and_min_max(self, emitter):
        p = ast.Reduce(ast.ReduceOp.AVG, col("hours"), ast.GetTable(), eq("title", "chef"))
        assert emitter.emit(p).startswith("=AVERAGEIFS(")
        p = ast.Reduce(ast.ReduceOp.MAX, col("hours"), ast.GetTable(), eq("title", "chef"))
        assert emitter.emit(p).startswith("=MAXIFS(")

    def test_lookup_index_match(self, emitter):
        p = ast.Lookup(
            text("chef"), ast.GetTable("PayRates"), col("title"), col("payrate")
        )
        f = emitter.emit(p)
        assert f.startswith("=INDEX(")
        assert 'MATCH("chef"' in f

    def test_vector_join(self, emitter):
        p = ast.Lookup(
            col("title"), ast.GetTable("PayRates"), col("title"), col("payrate")
        )
        f = emitter.emit(p)
        assert "MATCH(C2:C7" in f

    def test_arithmetic_with_cell_refs(self, emitter):
        p = ast.BinOp(ast.BinaryOp.DIV, ast.CellRef("I2"), ast.CellRef("I3"))
        assert emitter.emit(p) == "=(I2/I3)"

    def test_computed_criterion(self, emitter):
        avg = ast.Reduce(ast.ReduceOp.AVG, col("hours"), ast.GetTable(), ast.TrueF())
        p = ast.Count(ast.GetTable(), ast.Compare(ast.RelOp.GT, col("hours"), avg))
        f = emitter.emit(p)
        assert '">"&(AVERAGE(D2:D7))' in f

    def test_select_renders_action(self, emitter):
        p = ast.MakeActive(ast.SelectRows(ast.GetTable(), eq("title", "chef")))
        assert emitter.emit(p).startswith("[select rows of Employees")

    def test_format_renders_action(self, emitter):
        p = ast.FormatCells(
            ast.FormatSpec((FormatFn.color("red"),)),
            ast.SelectCells((col("totalpay"),), ast.GetTable(), eq("title", "chef")),
        )
        out = emitter.emit(p)
        assert out.startswith("[apply color red")
        assert "totalpay" in out


class TestParaphrase:
    def test_running_example(self):
        text_out = paraphrase(running_example())
        assert text_out == (
            "sum up the totalpay where location = capitol hill"
            " and title = barista"
        )

    def test_count(self):
        p = ast.Count(ast.GetTable(), ast.Not(eq("location", "europe")))
        assert paraphrase(p) == "count the rows where location ≠ europe"

    def test_lookup(self):
        p = ast.Lookup(
            text("chef"), ast.GetTable("PayRates"), col("title"), col("payrate")
        )
        assert paraphrase(p) == (
            "look up chef in title of PayRates and take payrate"
        )

    def test_arithmetic(self):
        p = ast.BinOp(ast.BinaryOp.MULT, col("basepay"), num(1.1))
        assert paraphrase(p) == "basepay times 1.1"

    def test_select(self):
        p = ast.MakeActive(ast.SelectRows(ast.GetTable(), eq("title", "chef")))
        assert paraphrase(p) == "select the rows where title = chef"

    def test_format(self):
        p = ast.FormatCells(
            ast.FormatSpec((FormatFn.color("red"),)),
            ast.SelectRows(ast.GetTable(), ast.Compare(ast.RelOp.GT, col("othours"), num(0))),
        )
        assert paraphrase(p) == (
            "apply color red to the rows where othours > 0"
        )

    def test_get_format_source(self):
        spec = ast.FormatSpec((FormatFn.color("red"),))
        p = ast.Reduce(ast.ReduceOp.SUM, col("totalpay"), ast.GetFormat(spec), ast.TrueF())
        assert "with color red" in paraphrase(p)

    def test_get_active_source(self):
        p = ast.Reduce(ast.ReduceOp.SUM, col("totalpay"), ast.GetActive(), ast.TrueF())
        assert "current selection" in paraphrase(p)

    def test_partial_expression_paraphrases(self):
        p = ast.Reduce(ast.ReduceOp.SUM, col("totalpay"), ast.GetTable(), ast.Hole(2))
        assert "□G2" in paraphrase(p)
